"""§10 extension — untrusted storage on servers: quantify the batching
optimisation the paper suggests ("reducing network round-trips to the
untrusted server, such as batching reads and writes")."""

from benchmarks.conftest import report
from repro.extensions import NetworkModel, RemoteUntrustedStore
from repro.platform import MemoryUntrustedStore


def test_read_batching_round_trips(benchmark):
    remote = RemoteUntrustedStore(MemoryUntrustedStore(4 << 20))
    extents = [(i * 1024, 256) for i in range(100)]
    for offset, _size in extents:
        remote.write(offset, b"\x7a" * 256)
    remote.flush()

    remote.reset_accounting()
    for offset, size in extents:
        remote.read(offset, size)
    unbatched = remote.round_trips

    remote.reset_accounting()
    remote.read_many(extents)
    batched = remote.round_trips

    benchmark(remote.read_many, extents)

    wan = NetworkModel(round_trip_latency=0.05)
    lan = NetworkModel(round_trip_latency=0.0005)
    report(
        "§10 remote batching",
        [
            ("round trips, one-by-one", str(unbatched), "1 per read"),
            ("round trips, batched", str(batched), "1 per batch"),
            (
                "WAN time saved (100 reads)",
                f"{wan.time(unbatched, 25600)*1000:.0f} -> "
                f"{wan.time(batched, 25600)*1000:.0f} ms",
                "batching wins on high-latency links",
            ),
            (
                "LAN time saved",
                f"{lan.time(unbatched, 25600)*1000:.1f} -> "
                f"{lan.time(batched, 25600)*1000:.1f} ms",
                "smaller but real",
            ),
        ],
    )
    assert batched == 1
    assert unbatched == len(extents)


def test_commit_write_batching(benchmark):
    """Writes queue client-side; one flush round trip per commit batch."""
    remote = RemoteUntrustedStore(MemoryUntrustedStore(4 << 20))
    remote.reset_accounting()
    for i in range(50):
        remote.write(i * 512, b"\x11" * 512)
    remote.flush()
    benchmark(lambda: None)
    report(
        "§10 remote write batching",
        [("round trips for 50 writes + flush", str(remote.round_trips), "1")],
    )
    assert remote.round_trips == 1
