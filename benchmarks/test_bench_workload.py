"""Figure 10 — the bind/release operation mix.

The workload must execute exactly the paper's operation counts (they are
its specification — see repro.bench.workload); this bench verifies both
experiments on TDB and prints the table."""

from benchmarks.conftest import report
from repro.bench.adapters import TdbAdapter
from repro.bench.workload import FIGURE_10, Workload


def _run(kind):
    adapter = TdbAdapter()
    workload = Workload(adapter)
    workload.setup()
    counts = workload.run_experiment(kind)
    adapter.close()
    return counts


def test_figure10_operation_counts(benchmark):
    release = _run("release")
    bind = _run("bind")
    benchmark(lambda: None)  # the experiments above are the measurement
    rows = []
    for op in ("read", "update", "delete", "add", "commit"):
        rows.append(
            (
                f"release {op}",
                str(release[op]),
                str(FIGURE_10["release"][op]),
            )
        )
    for op in ("read", "update", "delete", "add", "commit"):
        rows.append((f"bind {op}", str(bind[op]), str(FIGURE_10["bind"][op])))
    report("Figure 10 operation counts", rows)
    assert release == FIGURE_10["release"]
    assert bind == FIGURE_10["bind"]
