"""Chunk identifiers and chunk-map position arithmetic (§4.3, §5.1).

A chunk id comprises the id of the containing partition and the chunk's
*position* in that partition's position map.  The position encodes the
chunk's place in the map tree: its *height* (0 for data chunks, ≥1 for map
chunks) and its *rank* from the left among chunks at that height.  As the
tree grows, chunks are added to the right and to the top, so positions of
existing chunks never change — which is what lets ids navigate the map
without the map storing ids explicitly.

The partition leader's position changes as the tree grows, so leaders get
a reserved position instead (``LEADER_HEIGHT``).

Applications only ever see ``(partition_id, rank)`` pairs for height-0
data chunks; heights are internal to the chunk store.
"""

from __future__ import annotations

from dataclasses import dataclass

#: partition id of the system partition (holds the partition map)
SYSTEM_PARTITION = 0

#: reserved height marking a partition leader chunk
LEADER_HEIGHT = 0xFF

#: maximum tree height (a fanout-64 tree of height 9 addresses 64^9 chunks)
MAX_HEIGHT = 0xFE


@dataclass(frozen=True)
class ChunkId:
    """Identifier of a chunk: partition + position (height, rank)."""

    partition: int
    height: int
    rank: int

    def __post_init__(self) -> None:
        if self.partition < 0 or self.height < 0 or self.rank < 0:
            raise ValueError(f"invalid chunk id {self}")

    def is_data(self) -> bool:
        return self.height == 0

    def is_map(self) -> bool:
        return 0 < self.height <= MAX_HEIGHT

    def is_leader(self) -> bool:
        return self.height == LEADER_HEIGHT

    def parent(self, fanout: int) -> "ChunkId":
        """The map chunk whose descriptor vector contains this chunk."""
        if self.is_leader():
            raise ValueError("leader chunks have no parent map chunk")
        return ChunkId(self.partition, self.height + 1, self.rank // fanout)

    def slot(self, fanout: int) -> int:
        """This chunk's slot index within its parent's descriptor vector."""
        return self.rank % fanout

    def child(self, fanout: int, slot: int) -> "ChunkId":
        """The chunk described by ``slot`` of this map chunk."""
        if not self.is_map():
            raise ValueError(f"{self} is not a map chunk")
        return ChunkId(self.partition, self.height - 1, self.rank * fanout + slot)

    def __str__(self) -> str:
        if self.is_leader():
            return f"{self.partition}:leader"
        return f"{self.partition}:{self.height}.{self.rank}"


def leader_id(partition: int) -> ChunkId:
    """The reserved id of a partition's leader chunk."""
    return ChunkId(partition, LEADER_HEIGHT, 0)


def data_id(partition: int, rank: int) -> ChunkId:
    """The id of a data chunk (what applications hold)."""
    return ChunkId(partition, 0, rank)


def tree_capacity(fanout: int, height: int) -> int:
    """Number of data ranks addressable by a tree of ``height`` levels."""
    return fanout**height


def required_height(fanout: int, next_rank: int) -> int:
    """Smallest tree height whose root covers data ranks < ``next_rank``."""
    if next_rank <= 0:
        return 0
    height = 1
    capacity = fanout
    while capacity < next_rank:
        capacity *= fanout
        height += 1
    return height


def partition_rank(partition_id: int) -> int:
    """Position (rank) of a partition's leader among the system data chunks.

    Partition ids are allocated from the system partition's chunk id space:
    user partition *pid* stores its leader at system data rank ``pid - 1``
    (the system partition itself, pid 0, has the reserved system leader).
    """
    if partition_id <= SYSTEM_PARTITION:
        raise ValueError(f"partition {partition_id} has no leader rank")
    return partition_id - 1


def rank_to_partition(rank: int) -> int:
    """Inverse of :func:`partition_rank`."""
    return rank + 1
