"""Chunk store basics: the §4.1 specification surface."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.cache import DescriptorCache
from repro.chunkstore.descriptor import ChunkDescriptor, ChunkStatus
from repro.chunkstore.ids import data_id
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkNotWrittenError,
    ChunkStoreError,
    StorageFullError,
)
from tests.conftest import make_config, make_platform


def fresh_partition(store, cipher="ctr-sha256", hash_name="sha1"):
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name=cipher, hash_name=hash_name)])
    return pid


class TestSpecification:
    def test_write_read(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"state")])
        assert store.read_chunk(pid, rank) == b"state"

    def test_variable_size_rewrite(self, store):
        """Write sets the state 'possibly of different size'."""
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"short")])
        store.commit([ops.WriteChunk(pid, rank, b"much longer state " * 50)])
        assert store.read_chunk(pid, rank) == b"much longer state " * 50
        store.commit([ops.WriteChunk(pid, rank, b"")])
        assert store.read_chunk(pid, rank) == b""

    def test_write_unallocated_signals(self, store):
        pid = fresh_partition(store)
        with pytest.raises(ChunkNotAllocatedError):
            store.commit([ops.WriteChunk(pid, 17, b"x")])

    def test_read_unwritten_signals(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        with pytest.raises(ChunkNotWrittenError):
            store.read_chunk(pid, rank)

    def test_read_unallocated_signals(self, store):
        pid = fresh_partition(store)
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid, 5)

    def test_deallocate_then_read_signals(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"x")])
        store.commit([ops.DeallocateChunk(pid, rank)])
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid, rank)

    def test_deallocate_unallocated_signals(self, store):
        pid = fresh_partition(store)
        with pytest.raises(ChunkNotAllocatedError):
            store.commit([ops.DeallocateChunk(pid, 3)])

    def test_deallocated_ids_are_reused(self, store):
        """Ids of deallocated chunks are reused to keep the map compact
        (§4.4)."""
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(5)]
        store.commit([ops.WriteChunk(pid, r, b"d") for r in ranks])
        store.commit([ops.DeallocateChunk(pid, ranks[2])])
        assert store.allocate_chunk(pid) == ranks[2]

    def test_multi_chunk_commit_is_atomic_group(self, store):
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(10)]
        store.commit(
            [ops.WriteChunk(pid, r, f"chunk{r}".encode()) for r in ranks]
        )
        for r in ranks:
            assert store.read_chunk(pid, r) == f"chunk{r}".encode()

    def test_commit_mixing_write_and_dealloc(self, store):
        pid = fresh_partition(store)
        a = store.allocate_chunk(pid)
        b = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, a, b"a"), ops.WriteChunk(pid, b, b"b")])
        c = store.allocate_chunk(pid)
        store.commit(
            [ops.DeallocateChunk(pid, a), ops.WriteChunk(pid, c, b"c")]
        )
        assert store.read_chunk(pid, c) == b"c"
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid, a)

    def test_duplicate_write_in_commit_rejected(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        with pytest.raises(ChunkStoreError):
            store.commit(
                [ops.WriteChunk(pid, rank, b"1"), ops.WriteChunk(pid, rank, b"2")]
            )

    def test_allocate_is_volatile_until_commit(self, store):
        """Allocated but unwritten chunk ids are deallocated automatically
        upon restart (§4.4)."""
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.close()
        store.platform.reboot()
        reopened = ChunkStore.open(store.platform)
        # the same rank is handed out again
        assert reopened.allocate_chunk(pid) == rank

    def test_chunk_id_into_other_chunk_same_commit(self, store):
        """§4.1: a newly-allocated chunk id can be stored in another chunk
        during the same commit."""
        pid = fresh_partition(store)
        directory = store.allocate_chunk(pid)
        payload = store.allocate_chunk(pid)
        store.commit(
            [
                ops.WriteChunk(pid, payload, b"the data"),
                ops.WriteChunk(pid, directory, str(payload).encode()),
            ]
        )
        stored_rank = int(store.read_chunk(pid, directory))
        assert store.read_chunk(pid, stored_rank) == b"the data"

    def test_chunk_status_introspection(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        assert store.chunk_status(pid, rank) == "unwritten"
        store.commit([ops.WriteChunk(pid, rank, b"x")])
        assert store.chunk_status(pid, rank) == "written"
        store.commit([ops.DeallocateChunk(pid, rank)])
        assert store.chunk_status(pid, rank) == "free"
        assert store.chunk_status(pid, rank + 100) == "unallocated"

    def test_large_chunk_within_segment(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        data = bytes(range(256)) * 40  # ~10 KB, within the 16 KB segment
        store.commit([ops.WriteChunk(pid, rank, data)])
        assert store.read_chunk(pid, rank) == data

    def test_oversized_chunk_rejected(self, store):
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        with pytest.raises(ChunkStoreError):
            store.commit([ops.WriteChunk(pid, rank, b"x" * 17 * 1024)])

    def test_closed_store_rejects_operations(self, store):
        store.close()
        with pytest.raises(ChunkStoreError):
            store.commit([])

    def test_unknown_operation_rejected(self, store):
        with pytest.raises(ChunkStoreError):
            store.commit(["not an op"])

    def test_empty_commit_is_fine(self, store):
        store.commit([])


class TestTreeGrowth:
    def test_many_chunks_across_map_levels(self, platform):
        """With fanout 4, 100 chunks need a height-4 tree."""
        store = ChunkStore.format(platform, make_config(fanout=4))
        pid = fresh_partition(store)
        ranks = []
        for i in range(100):
            rank = store.allocate_chunk(pid)
            ranks.append(rank)
            store.commit([ops.WriteChunk(pid, rank, f"v{i}".encode())])
        store.checkpoint()
        assert store.partitions[pid].payload.tree_height >= 4
        for i, rank in enumerate(ranks):
            assert store.read_chunk(pid, rank) == f"v{i}".encode()

    def test_growth_survives_reopen(self, platform):
        store = ChunkStore.format(platform, make_config(fanout=4))
        pid = fresh_partition(store)
        for i in range(60):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        store.close()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert len(reopened.data_ranks(pid)) == 60

    def test_cold_cache_read_climbs_map(self, platform):
        """Bottom-up read path: reads work with an empty descriptor cache
        (§4.5)."""
        store = ChunkStore.format(platform, make_config(fanout=4))
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(50)]
        store.commit([ops.WriteChunk(pid, r, f"c{r}".encode()) for r in ranks])
        store.checkpoint()
        store.cache.clear()
        assert store.read_chunk(pid, ranks[37]) == f"{'c'}{ranks[37]}".encode()


class TestDescriptorCache:
    def test_dirty_pinned_through_eviction(self):
        cache = DescriptorCache(max_clean=2)
        dirty = ChunkDescriptor(ChunkStatus.WRITTEN, 1, 1, b"")
        cache.put_dirty(data_id(1, 0), dirty)
        for i in range(10):
            cache.put_clean(data_id(1, i + 1), ChunkDescriptor())
        assert cache.get(data_id(1, 0)) is dirty
        assert cache.dirty_count() == 1

    def test_clean_lru_eviction(self):
        cache = DescriptorCache(max_clean=2)
        for i in range(3):
            cache.put_clean(data_id(1, i), ChunkDescriptor())
        assert cache.get(data_id(1, 0)) is None
        assert cache.get(data_id(1, 2)) is not None

    def test_dirty_shadows_clean(self):
        cache = DescriptorCache()
        cache.put_dirty(data_id(1, 0), ChunkDescriptor(ChunkStatus.FREE))
        cache.put_clean(data_id(1, 0), ChunkDescriptor(ChunkStatus.WRITTEN, 9, 9, b""))
        assert cache.get(data_id(1, 0)).status == ChunkStatus.FREE

    def test_clean_all_dirty(self):
        cache = DescriptorCache()
        cache.put_dirty(data_id(1, 0), ChunkDescriptor())
        cache.clean_all_dirty()
        assert cache.dirty_count() == 0
        assert cache.get(data_id(1, 0)) is not None

    def test_drop_partition(self):
        cache = DescriptorCache()
        cache.put_dirty(data_id(1, 0), ChunkDescriptor())
        cache.put_clean(data_id(2, 0), ChunkDescriptor())
        cache.drop_partition(1)
        assert cache.get(data_id(1, 0)) is None
        assert cache.get(data_id(2, 0)) is not None

    def test_hit_miss_stats(self):
        cache = DescriptorCache()
        cache.get(data_id(1, 0))
        cache.put_clean(data_id(1, 0), ChunkDescriptor())
        cache.get(data_id(1, 0))
        assert cache.misses == 1
        assert cache.hits == 1


class TestStorageLimits:
    def test_storage_full_raises(self):
        platform = make_platform(size=128 * 1024)
        store = ChunkStore.format(platform, make_config(segment_size=16 * 1024))
        pid = fresh_partition(store)
        with pytest.raises(StorageFullError):
            for i in range(200):
                rank = store.allocate_chunk(pid)
                store.commit([ops.WriteChunk(pid, rank, bytes(1000))])

    def test_churn_survives_via_cleaning(self):
        """Overwriting the same chunks forever must not exhaust space."""
        platform = make_platform(size=256 * 1024)
        store = ChunkStore.format(
            platform, make_config(segment_size=16 * 1024, delta_ut=5)
        )
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(5)]
        store.commit([ops.WriteChunk(pid, r, bytes(500)) for r in ranks])
        for round_no in range(150):
            store.commit(
                [ops.WriteChunk(pid, ranks[round_no % 5], bytes([round_no % 251]) * 500)]
            )
        assert store.read_chunk(pid, ranks[0])[:1]
