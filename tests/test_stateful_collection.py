"""Hypothesis stateful testing: the collection store against a plain
Python model, under random interleavings of inserts, updates, removals,
index queries, transaction aborts, crash + recovery cycles, and
adversarial probes of the underlying device image."""

import random

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.chunkstore import ChunkStore
from repro.collection import CollectionStore, KeyFunctionRegistry, field_key
from repro.errors import TDBError
from repro.objectstore import ObjectStore
from repro.testing.adversary import apply_random_mutation
from repro.testing.snapshot import PlatformSnapshot
from tests.conftest import make_config, make_platform


class CollectionMachine(RuleBasedStateMachine):
    """Model: a dict ref -> value; the collection must always agree."""

    def __init__(self):
        super().__init__()
        self.platform = make_platform(size=16 * 1024 * 1024)
        self.chunks = ChunkStore.format(
            self.platform, make_config(segment_size=32 * 1024)
        )
        self.objects = ObjectStore(self.chunks, cache_size=8192)
        self.pid = self.objects.create_partition(
            cipher_name="null", hash_name="sha1"
        )
        registry = KeyFunctionRegistry()
        registry.register("score", field_key("score"))
        self.registry = registry
        self.collections = CollectionStore(self.objects, self.pid, registry)
        with self.objects.transaction() as tx:
            coll = self.collections.create_collection(tx, "things")
            self.collections.add_index(tx, coll, "by_score", "score", sorted_index=True)
        self.model = {}
        self.counter = 0

    def _coll(self, tx):
        return self.collections.open_collection(tx, "things")

    refs = Bundle("refs")

    @rule(target=refs, score=st.integers(0, 50))
    def insert(self, score):
        self.counter += 1
        value = {"id": self.counter, "score": score}
        with self.objects.transaction() as tx:
            ref = self.collections.insert(tx, self._coll(tx), value)
        self.model[ref] = value
        return ref

    @rule(ref=refs, score=st.integers(0, 50))
    def update(self, ref, score):
        if ref not in self.model:
            return
        value = dict(self.model[ref], score=score)
        with self.objects.transaction() as tx:
            self.collections.update(tx, self._coll(tx), ref, value)
        self.model[ref] = value

    @rule(ref=refs)
    def remove(self, ref):
        if ref not in self.model:
            return
        with self.objects.transaction() as tx:
            self.collections.remove(tx, self._coll(tx), ref)
        del self.model[ref]

    @rule(ref=refs, score=st.integers(0, 50))
    def aborted_update(self, ref, score):
        if ref not in self.model:
            return
        try:
            with self.objects.transaction() as tx:
                self.collections.update(
                    tx, self._coll(tx), ref, dict(self.model[ref], score=score)
                )
                raise RuntimeError("deliberate abort")
        except RuntimeError:
            pass  # the model is unchanged

    @rule()
    def reopen(self):
        self.chunks.close()
        self.platform.reboot()
        self.chunks = ChunkStore.open(self.platform)
        self.objects = ObjectStore(self.chunks, cache_size=8192)
        self.collections = CollectionStore(self.objects, self.pid, self.registry)

    @rule()
    def crash_and_recover(self):
        """Power-fail without closing: un-flushed writes are lost, but
        every committed transaction must survive recovery (the model only
        records committed state, so the usual invariants check this)."""
        self.platform.reboot()
        self.chunks = ChunkStore.open(self.platform)
        self.objects = ObjectStore(self.chunks, cache_size=8192)
        self.collections = CollectionStore(self.objects, self.pid, self.registry)

    @rule(seed=st.integers(0, 2**32 - 1))
    def adversary_probe(self, seed):
        """One seeded device mutation against a *throwaway copy* of the
        platform: reads on the copy must detect or be harmless, and the
        live platform must be bit-identical afterwards."""
        snapshot = PlatformSnapshot.capture(self.platform)
        live_image = self.platform.untrusted.tamper_image()
        victim = snapshot.restore()
        rng = random.Random(seed)
        detail = apply_random_mutation(victim.untrusted, rng)
        try:
            store = ChunkStore.open(victim)
            for pid in store.partition_ids():
                for rank in store.data_ranks(pid):
                    store.read_chunk(pid, rank)
        except TDBError:
            pass  # detect (or any fail-stop TDB refusal): the oracle holds
        # silent wrong *bytes* inside objects are caught by the object
        # layer's hashes, surfacing as TDBError above; anything non-TDB
        # propagates and fails the test
        assert self.platform.untrusted.tamper_image() == live_image, detail

    @rule(low=st.integers(0, 50), high=st.integers(0, 50))
    def range_query_agrees(self, low, high):
        if low > high:
            low, high = high, low
        with self.objects.transaction() as tx:
            got = sorted(
                (key, tx.get(ref)["id"])
                for key, ref in self.collections.range(
                    tx, self._coll(tx), "by_score", low, high
                )
            )
        expected = sorted(
            (value["score"], value["id"])
            for value in self.model.values()
            if low <= value["score"] <= high
        )
        assert got == expected

    @invariant()
    def size_and_scan_agree(self):
        with self.objects.transaction() as tx:
            coll = self._coll(tx)
            assert coll.size(tx) == len(self.model)
            got = {ref: tx.get(ref) for ref in self.collections.scan(tx, coll)}
        assert got == self.model


CollectionMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestCollectionStateful = CollectionMachine.TestCase
