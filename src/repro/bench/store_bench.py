"""Read-path benchmark: ``python -m repro.bench.store_bench``.

Measures the chunk-store read path end-to-end on an in-memory platform,
with a deliberately slow partition cipher (pure-Python xtea-cbc) so the
validated-payload cache's savings — skipped decrypt + hash + device reads
— dominate timing noise:

* ``write`` — populate the store (one commit per small batch);
* ``recovery`` — close with a residual log and reopen (roll-forward now
  reads each log segment in one ``read_many`` span);
* ``cold_read`` — first read of every chunk through ``read_chunks``:
  batched map walk + batched data-extent fetch, payload cache cold;
* ``warm_read`` — repeated re-reads served by the validated-payload
  cache (no device, cipher, or hasher work);
* ``uncached_read`` — the same repeated reads with the payload cache
  disabled (``payload_cache_bytes=0``): the pre-cache baseline;
* ``scan`` — round-trip counts for a full scan, batched vs one read per
  chunk.

The bench runs two partition-cipher tiers:

* the **slow tier** (pure-Python ``xtea-cbc`` + ``sha256``) — the
  configuration where the validated-payload cache's savings dominate
  timing noise, and the historical baseline every prior BENCH number used;
* the **default tier** (``--cipher``, default ``aes-256-gcm`` when the
  AEAD backend is present) — the one-pass authenticated path, where the
  descriptor digest is the auth tag and the separate hash pass is skipped.

Results go to ``BENCH_store.json`` (slow tier at the top level, the
default tier under ``"default_tier"``); ``--check`` exits non-zero unless
the acceptance floors hold (warm repeated-read throughput ≥ 5× the
uncached baseline on the slow tier, warm round trips < cold on both, and
default-tier uncached reads ≥ 400 ops/s — 3× the pre-AEAD 132 ops/s
baseline), which CI uses as a perf-regression smoke test.  ``--tiny``
shrinks the run for CI smoke.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from repro import obs
from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.crypto import aead
from repro.platform.trusted_platform import TrustedPlatform

#: acceptance floor: warm payload-cache reads over the uncached baseline
#: (slow tier only — an AEAD tier's uncached reads are fast enough that
#: the cache's margin over them is not the interesting number)
WARM_SPEEDUP_FLOOR = 5.0

#: acceptance floor: default-tier uncached reads, ops/s — 3× the 132
#: ops/s the slow tier measured before the AEAD tier existed
UNCACHED_OPS_FLOOR = 400.0

#: acceptance ceiling: cost of the always-on obs layer (tracing disabled,
#: metrics + events live) over the same workload with obs fully suspended
OBS_OVERHEAD_CEILING_PCT = 5.0

#: the slow tier's cipher/hash: the slowest registered pair, i.e. the
#: configuration where the read path's crypto cost is most visible
PARTITION_CIPHER = "xtea-cbc"
PARTITION_HASH = "sha256"

#: the default tier's suite when ``--cipher auto`` finds the AEAD backend
DEFAULT_AEAD_CIPHER = "aes-256-gcm"


def _config(payload_cache: bool = True) -> StoreConfig:
    return StoreConfig(
        segment_size=64 * 1024,
        system_cipher="ctr-sha256",
        system_hash="sha1",
        validation_mode="counter",
        delta_ut=5,
        payload_cache_bytes=StoreConfig.payload_cache_bytes if payload_cache else 0,
    )


def resolve_cipher(requested: str) -> Optional[str]:
    """Map ``--cipher`` to the default tier's suite; ``None`` means the
    default tier is skipped (AEAD backend absent under ``auto``)."""
    if requested != "auto":
        return requested
    return DEFAULT_AEAD_CIPHER if aead.available() else None


def run(
    chunks: int,
    chunk_size: int,
    repeats: int,
    cipher: str = PARTITION_CIPHER,
    hash_name: str = PARTITION_HASH,
) -> Dict[str, object]:
    obs.reset()  # per-phase histograms below cover this run only
    platform = TrustedPlatform.create_in_memory(untrusted_size=16 * 1024 * 1024)
    io = platform.untrusted.stats
    results: Dict[str, object] = {
        "chunks": chunks,
        "chunk_size": chunk_size,
        "repeats": repeats,
        "partition_cipher": cipher,
        "partition_hash": hash_name,
    }

    # -- write ---------------------------------------------------------------
    store = ChunkStore.format(platform, _config())
    pid = store.allocate_partition()
    store.commit(
        [ops.WritePartition(pid, cipher_name=cipher, hash_name=hash_name)]
    )
    payload = bytes(i & 0xFF for i in range(chunk_size))
    before = io.snapshot()
    start = time.perf_counter()
    for base in range(0, chunks, 8):
        batch = range(base, min(base + 8, chunks))
        for rank in batch:
            store.partitions[pid].allocate_specific(rank)
        store.commit([ops.WriteChunk(pid, rank, payload) for rank in batch])
    elapsed = time.perf_counter() - start
    delta = io.delta(before)
    results["write"] = {
        "seconds": round(elapsed, 4),
        "ops_per_sec": round(chunks / elapsed, 1),
        "round_trips": delta.reads + delta.writes + delta.flushes,
    }
    store.checkpoint()
    # leave a residual log so recovery below has roll-forward work to do
    store.commit([ops.WriteChunk(pid, rank, payload) for rank in range(4)])
    store.close(checkpoint=False)

    # -- recovery ------------------------------------------------------------
    before = io.snapshot()
    start = time.perf_counter()
    store = ChunkStore.open(platform, _config())
    elapsed = time.perf_counter() - start
    delta = io.delta(before)
    results["recovery"] = {
        "seconds": round(elapsed, 4),
        "reads": delta.reads,
        "batched_reads": delta.batched_reads,
        "batched_extents": delta.batched_extents,
    }

    ranks = list(range(chunks))

    # -- cold read (payload cache empty, batched walk + fetch) ---------------
    before = io.snapshot()
    start = time.perf_counter()
    cold = store.read_chunks(pid, ranks)
    cold_elapsed = time.perf_counter() - start
    cold_delta = io.delta(before)
    assert all(cold[rank] == payload for rank in ranks)
    results["cold_read"] = {
        "seconds": round(cold_elapsed, 4),
        "ops_per_sec": round(chunks / cold_elapsed, 1),
        "round_trips": cold_delta.reads,
        "batched_reads": cold_delta.batched_reads,
        "batched_extents": cold_delta.batched_extents,
    }

    # -- warm read (validated-payload cache hot) -----------------------------
    before = io.snapshot()
    start = time.perf_counter()
    for _ in range(repeats):
        for rank in ranks:
            store.read_chunk(pid, rank)
    warm_elapsed = time.perf_counter() - start
    warm_delta = io.delta(before)
    results["warm_read"] = {
        "seconds": round(warm_elapsed, 4),
        "ops_per_sec": round(chunks * repeats / warm_elapsed, 1),
        "round_trips": warm_delta.reads,
    }
    results["payload_cache"] = store.payloads.stats()
    results["walk"] = store.stats()["walk"]
    store.close(checkpoint=False)

    # -- uncached baseline (payload cache disabled) --------------------------
    store = ChunkStore.open(platform, _config(payload_cache=False))
    for rank in ranks:  # warm the descriptor cache; payloads stay uncached
        store.read_chunk(pid, rank)
    before = io.snapshot()
    start = time.perf_counter()
    for _ in range(repeats):
        for rank in ranks:
            store.read_chunk(pid, rank)
    uncached_elapsed = time.perf_counter() - start
    uncached_delta = io.delta(before)
    results["uncached_read"] = {
        "seconds": round(uncached_elapsed, 4),
        "ops_per_sec": round(chunks * repeats / uncached_elapsed, 1),
        "round_trips": uncached_delta.reads,
    }

    # -- obs overhead: the always-on layer vs the same loop suspended --------
    # Measured in thread CPU time, not wall time: the overhead being
    # bounded is CPU work, and wall time on a loaded machine charges
    # scheduler preemptions to whichever side the scheduler happens to
    # hit — a single preemption of a sub-millisecond pass reads as
    # hundreds of percent "overhead".
    def _read_pass(loops: int) -> float:
        start = time.thread_time()
        for _ in range(loops):
            for rank in ranks:
                store.read_chunk(pid, rank)
        return time.thread_time() - start

    # calibrate the pass length so timer resolution is negligible
    loops = 1
    while _read_pass(loops) < 0.01 and loops < 1024:
        loops *= 2
    # interleave the passes so clock-speed drift hits both sides equally,
    # and keep the best of each side: min filters cache-state outliers
    default_best = suspended_best = float("inf")
    for _ in range(5):
        default_best = min(default_best, _read_pass(loops))
        with obs.suspend():
            suspended_best = min(suspended_best, _read_pass(loops))
    overhead_pct = (
        (default_best - suspended_best) / suspended_best * 100.0
        if suspended_best
        else 0.0
    )
    results["obs_overhead"] = {
        "default_s": round(default_best, 5),
        "suspended_s": round(suspended_best, 5),
        "overhead_pct": round(overhead_pct, 2),
        "ceiling_pct": OBS_OVERHEAD_CEILING_PCT,
    }

    # -- scan round trips: batched vs one device read per chunk --------------
    before = io.snapshot()
    for rank in ranks:
        store.read_chunk(pid, rank)
    single_delta = io.delta(before)
    store.close(checkpoint=False)
    store = ChunkStore.open(platform, _config())
    store.read_chunks(pid, ranks[:1])  # prime descriptors via the walk
    store.payloads.clear()
    before = io.snapshot()
    store.read_chunks(pid, ranks)
    batched_delta = io.delta(before)
    results["scan"] = {
        "single_round_trips": single_delta.reads,
        "batched_round_trips": batched_delta.reads,
        "round_trips_saved": single_delta.reads - batched_delta.reads,
    }
    store.close()

    warm_ops = results["warm_read"]["ops_per_sec"]
    uncached_ops = results["uncached_read"]["ops_per_sec"]
    results["warm_speedup_vs_uncached"] = round(warm_ops / uncached_ops, 2)
    results["floors"] = {"warm_speedup": WARM_SPEEDUP_FLOOR}

    # per-phase latency percentiles from the obs histograms this run fed
    results["latency"] = {
        name: {
            "count": snap["count"],
            "p50_ms": round(snap["p50_s"] * 1e3, 4),
            "p95_ms": round(snap["p95_s"] * 1e3, 4),
            "p99_ms": round(snap["p99_s"] * 1e3, 4),
            "max_ms": round(snap["max_s"] * 1e3, 4),
        }
        for name, snap in sorted(obs.metrics.snapshot()["histograms"].items())
    }
    return results


def check(results: Dict[str, object]) -> int:
    """Enforce the acceptance floors; returns a process exit status."""
    failed = False
    speedup = results["warm_speedup_vs_uncached"]
    if speedup < WARM_SPEEDUP_FLOOR:
        print(
            f"FAIL: warm reads are {speedup:.1f}x the uncached baseline, "
            f"floor is {WARM_SPEEDUP_FLOOR:.1f}x",
            file=sys.stderr,
        )
        failed = True
    warm_trips = results["warm_read"]["round_trips"]
    cold_trips = results["cold_read"]["round_trips"]
    if warm_trips >= cold_trips:
        print(
            f"FAIL: warm pass issued {warm_trips} round trips, cold pass "
            f"{cold_trips} (warm must be fewer)",
            file=sys.stderr,
        )
        failed = True
    overhead = results["obs_overhead"]["overhead_pct"]
    if overhead > OBS_OVERHEAD_CEILING_PCT:
        print(
            f"FAIL: obs layer adds {overhead:.1f}% to uncached reads, "
            f"ceiling is {OBS_OVERHEAD_CEILING_PCT:.1f}%",
            file=sys.stderr,
        )
        failed = True
    default_tier = results.get("default_tier")
    if default_tier is not None:
        uncached_ops = default_tier["uncached_read"]["ops_per_sec"]
        if uncached_ops < UNCACHED_OPS_FLOOR:
            print(
                f"FAIL: default tier ({default_tier['partition_cipher']}) "
                f"uncached reads run at {uncached_ops:.0f} ops/s, floor is "
                f"{UNCACHED_OPS_FLOOR:.0f} ops/s",
                file=sys.stderr,
            )
            failed = True
        if (
            default_tier["warm_read"]["round_trips"]
            >= default_tier["cold_read"]["round_trips"]
        ):
            print(
                "FAIL: default tier's warm pass issued at least as many "
                "round trips as its cold pass",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("acceptance floors met")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_store.json", help="output JSON path"
    )
    parser.add_argument(
        "--chunks", type=int, default=48,
        help="data chunks (≤ 64 keeps the location map at height 1)"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=4096, help="chunk body bytes"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="re-read passes (warm/uncached)"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke sizing (8 chunks, 2 repeats)"
    )
    parser.add_argument(
        "--cipher", default="auto",
        choices=("auto", "aes-256-gcm", "chacha20-poly1305", "xtea-cbc",
                 "ctr-sha256"),
        help="default-tier partition cipher (auto: aes-256-gcm when the "
             "AEAD backend is present, else slow tier only)"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the acceptance floors are met"
    )
    args = parser.parse_args(argv)
    if args.tiny:
        args.chunks, args.repeats = 8, 2

    def _print_tier(tier: Dict[str, object], label: str) -> None:
        print(f"-- {label} tier: {tier['partition_cipher']} / "
              f"{tier['partition_hash']}")
        for section in ("write", "cold_read", "warm_read", "uncached_read"):
            entry = tier[section]
            print(
                f"{section:>13}: {entry['ops_per_sec']:10.1f} ops/s  "
                f"({entry['seconds']:.4f} s, {entry['round_trips']} round trips)"
            )
        scan = tier["scan"]
        print(
            f"{'scan':>13}: {scan['batched_round_trips']} batched vs "
            f"{scan['single_round_trips']} single round trips "
            f"({scan['round_trips_saved']} saved)"
        )
        print(
            f"warm speedup vs uncached: "
            f"{tier['warm_speedup_vs_uncached']:.1f}x"
        )
        print(
            f"obs overhead on uncached reads: "
            f"{tier['obs_overhead']['overhead_pct']:+.1f}%"
        )

    # slow tier first: the historical baseline, and the top-level JSON
    results = run(args.chunks, args.chunk_size, args.repeats)
    results["floors"]["uncached_ops_default_tier"] = UNCACHED_OPS_FLOOR
    _print_tier(results, "slow")

    default_cipher = resolve_cipher(args.cipher)
    if default_cipher is not None and default_cipher != PARTITION_CIPHER:
        default_tier = run(
            args.chunks, args.chunk_size, args.repeats,
            cipher=default_cipher, hash_name=PARTITION_HASH,
        )
        results["default_tier"] = default_tier
        _print_tier(default_tier, "default")
    elif default_cipher is None:
        print(f"default (AEAD) tier skipped: {aead.unavailable_reason()}")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
