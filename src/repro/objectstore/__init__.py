"""Object store (§7): typed, transactional objects over the chunk store."""

from repro.objectstore.cache import ObjectCache
from repro.objectstore.locks import LockManager
from repro.objectstore.pickling import (
    DEFAULT_REGISTRY,
    ObjectRef,
    PicklerRegistry,
    pickle_value,
    register_class,
    unpickle_value,
)
from repro.objectstore.store import ObjectStore, Transaction, TxStatus

__all__ = [
    "ObjectStore",
    "Transaction",
    "TxStatus",
    "ObjectRef",
    "ObjectCache",
    "LockManager",
    "PicklerRegistry",
    "DEFAULT_REGISTRY",
    "register_class",
    "pickle_value",
    "unpickle_value",
]
