"""Figure 11 and §9.5.2 — TDB vs XDB on the bind/release benchmark.

Paper result: "TDB outperformed XDB, primarily because of faster commits,
but also in the remaining database overhead.  We believe that XDB
performs multiple disk writes at commit."  (release: TDB ≈4.2 s vs XDB
≈7 s on their hardware.)  Stored sizes: XDB 3.8 MB vs TDB 4.0 MB at 60 %
maximum log utilization.

Both systems run the identical Figure 10 operation stream with the same
cryptographic parameters, comparable caches, and the same TR-flush
frequency (Δut = 5).  Total time = measured CPU + modeled I/O (the
DiskModel converts counted flushes/bytes into the paper's disk
constants); commit cost is isolated by attributing flush-driven I/O.
"""

import os
import time

from benchmarks.conftest import report
from repro.bench.adapters import TdbAdapter, XdbAdapter
from repro.bench.workload import Workload
from repro.platform import DiskModel

#: scale knob: TDB_BENCH_OPS=50 runs 5× the paper's 10 operations
_OPERATIONS = int(os.environ.get("TDB_BENCH_OPS", "10"))


def run_experiment(adapter_cls, kind):
    adapter = adapter_cls()
    workload = Workload(adapter)
    workload.setup()
    if hasattr(adapter, "platform"):
        untrusted = adapter.platform.untrusted
        tr_count = lambda: (
            adapter.platform.counter.write_count
            + adapter.platform.tamper_resistant.write_count
        )
    else:
        untrusted = adapter.store
        tr_count = lambda: adapter.tr.write_count
    io_before = untrusted.stats.snapshot()
    tr_before = tr_count()
    start = time.perf_counter()
    # the Figure-10 mix is defined per 10 operations; scale by repeating
    # whole experiments (TDB_BENCH_OPS=50 → 5 consecutive experiments)
    for _ in range(max(1, _OPERATIONS // 10)):
        workload.run_experiment(kind)
    cpu = time.perf_counter() - start
    io = untrusted.stats.delta(io_before)
    tr_writes = tr_count() - tr_before
    model = DiskModel()
    commit_io = model.write_time(io) + model.tamper_resistant_time(tr_writes)
    read_io = model.read_time(io)
    return {
        "cpu": cpu,
        "commit_io": commit_io,
        "read_io": read_io,
        "total": cpu + commit_io + read_io,
        "flushes": io.flushes,
        "bytes": io.bytes_written,
        "tr": tr_writes,
        "stored": adapter.stored_bytes(),
        "adapter": adapter,
    }


def test_figure11_release_and_bind(benchmark):
    results = {}
    for kind in ("release", "bind"):
        results[(kind, "TDB")] = run_experiment(TdbAdapter, kind)
        results[(kind, "XDB")] = run_experiment(XdbAdapter, kind)
    benchmark(lambda: None)  # the experiments above are the measurement
    rows = []
    for kind in ("release", "bind"):
        tdb = results[(kind, "TDB")]
        xdb = results[(kind, "XDB")]
        rows.extend(
            [
                (f"{kind} TDB total", f"{tdb['total']*1000:.0f} ms", "TDB wins"),
                (f"{kind} XDB total", f"{xdb['total']*1000:.0f} ms", "..."),
                (
                    f"{kind} commit I/O TDB/XDB",
                    f"{tdb['commit_io']*1000:.0f}/{xdb['commit_io']*1000:.0f} ms",
                    "faster commits are the main win",
                ),
                (
                    f"{kind} flushes TDB/XDB",
                    f"{tdb['flushes']}/{xdb['flushes']}",
                    "XDB: multiple disk writes per commit",
                ),
            ]
        )
    report("Figure 11 runtime comparison", rows)
    for kind in ("release", "bind"):
        tdb = results[(kind, "TDB")]
        xdb = results[(kind, "XDB")]
        assert tdb["total"] < xdb["total"], f"TDB must win on {kind}"
        assert tdb["commit_io"] < xdb["commit_io"]
        assert tdb["flushes"] < xdb["flushes"]
        assert tdb["bytes"] < xdb["bytes"]


def test_stored_size(benchmark):
    """§9.5.2: stored sizes after the release experiment.

    Paper: XDB 3.8 MB, TDB 4.0 MB (TDB computed at 60 % max log
    utilization).  Our XDB stores whole 4 KiB pages, so its footprint is
    *larger* than TDB's compact log — the one place where the
    reproduction's shape deviates; recorded in EXPERIMENTS.md."""
    tdb = run_experiment(TdbAdapter, "release")
    xdb = run_experiment(XdbAdapter, "release")
    benchmark(lambda: None)
    # normalise TDB to the paper's 60% utilization accounting
    chunks = tdb["adapter"].chunks
    tdb_at_60 = chunks.live_bytes() / 0.60
    report(
        "§9.5.2 stored size",
        [
            ("TDB live/0.6 util", f"{tdb_at_60/1e6:.2f} MB", "4.0 MB"),
            ("TDB raw log", f"{tdb['stored']/1e6:.2f} MB", "n/a"),
            ("XDB pages", f"{xdb['stored']/1e6:.2f} MB", "3.8 MB"),
        ],
    )
    assert tdb_at_60 > 0 and xdb["stored"] > 0
