"""The concurrent serving layer: group commit, MVCC snapshots, sessions.

Three tiers:

* deterministic :class:`GroupCommitter` unit tests over a fake chunk
  store (a gate blocks the leader so batches form on command);
* MVCC snapshot semantics over a real store (isolation, staleness,
  refcounting, cleaner pinning);
* an end-to-end stress test — N writer sessions and M snapshot readers
  hammering one :class:`TDBServer` — with invariants checked inside
  every snapshot, after the last commit, and again after crash recovery.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.chunkstore import ChunkStore
from repro.errors import ChunkStoreError, ObjectNotFoundError
from repro.objectstore import ObjectStore
from repro.objectstore.pickling import ObjectRef
from repro.server import GroupCommitter, TDBServer
from tests.conftest import make_config, make_platform


def make_stack():
    platform = make_platform()
    chunks = ChunkStore.format(platform, make_config())
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    return platform, chunks, objects, pid


def _join(threads, timeout=10.0):
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "worker thread wedged"


# ---------------------------------------------------------------------------
# GroupCommitter over a fake chunk store (deterministic batching)
# ---------------------------------------------------------------------------


class FakeChunks:
    """Records commits; optionally blocks the leader or rejects batches."""

    def __init__(self):
        self.commits = []
        self.gate = None  # when set, commit() blocks until the event fires
        self.reject_merged = False

    def commit(self, ops):
        if self.gate is not None:
            assert self.gate.wait(5.0), "test gate never opened"
        ops = list(ops)
        if self.reject_merged and len(ops) > 1:
            raise ChunkStoreError("merged preflight rejected")
        if any(op == "poison" for op in ops):
            raise ChunkStoreError("poison op")
        self.commits.append(ops)


class TestGroupCommitter:
    def test_single_commit_degenerates_to_plain_path(self):
        fake = FakeChunks()
        committer = GroupCommitter(fake)
        committer.commit(["a", "b"])
        assert fake.commits == [["a", "b"]]
        stats = committer.stats()
        assert stats["batches"] == 1
        assert stats["txs_committed"] == 1
        assert stats["mean_batch_size"] == 1.0

    def test_commits_queued_behind_leader_merge_into_one_batch(self):
        fake = FakeChunks()
        fake.gate = threading.Event()
        committer = GroupCommitter(fake)

        leader = threading.Thread(target=committer.commit, args=(["a"],))
        leader.start()
        # the leader is now blocked inside FakeChunks.commit; two more
        # committers arrive and enqueue behind it
        followers = []
        for op in ("b", "c"):
            thread = threading.Thread(target=committer.commit, args=([op],))
            thread.start()
            followers.append(thread)
        deadline = time.monotonic() + 5.0
        while len(committer._queue) < 2:
            assert time.monotonic() < deadline, "followers never enqueued"
            time.sleep(0.002)

        fake.gate.set()
        _join([leader] + followers)
        # first batch is the leader alone (it drained before followers
        # arrived); the second merges both followers into one commit
        assert fake.commits[0] == ["a"]
        assert sorted(fake.commits[1]) == ["b", "c"]
        stats = committer.stats()
        assert stats["batches"] == 2
        assert stats["txs_committed"] == 3
        assert stats["largest_batch"] == 2
        assert stats["fallbacks"] == 0

    def test_rejected_merge_falls_back_to_per_entry_commits(self):
        fake = FakeChunks()
        fake.gate = threading.Event()
        fake.reject_merged = True
        committer = GroupCommitter(fake)

        leader = threading.Thread(target=committer.commit, args=(["a"],))
        leader.start()
        followers = [
            threading.Thread(target=committer.commit, args=([op],))
            for op in ("b", "c")
        ]
        for thread in followers:
            thread.start()
        deadline = time.monotonic() + 5.0
        while len(committer._queue) < 2:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        fake.gate.set()
        _join([leader] + followers)
        # the merged ["b", "c"] batch was rejected; both entries must
        # still have committed — individually
        assert ["b"] in fake.commits and ["c"] in fake.commits
        stats = committer.stats()
        assert stats["fallbacks"] == 1
        assert stats["txs_committed"] == 3

    def test_poison_entry_fails_alone_in_fallback(self):
        fake = FakeChunks()
        fake.gate = threading.Event()
        committer = GroupCommitter(fake)
        results = {}

        def commit(name, ops):
            try:
                committer.commit(ops)
                results[name] = "ok"
            except ChunkStoreError:
                results[name] = "failed"

        leader = threading.Thread(target=commit, args=("a", ["a"]))
        leader.start()
        followers = [
            threading.Thread(target=commit, args=("poison", ["poison"])),
            threading.Thread(target=commit, args=("c", ["c"])),
        ]
        for thread in followers:
            thread.start()
        deadline = time.monotonic() + 5.0
        while len(committer._queue) < 2:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        fake.gate.set()
        _join([leader] + followers)
        # the poison op fails its merged batch, then fails alone in the
        # fallback; the innocent rider still commits
        assert results == {"a": "ok", "poison": "failed", "c": "ok"}
        assert ["c"] in fake.commits
        assert committer.stats()["fallbacks"] == 1

    def test_foreign_error_fails_the_whole_batch(self):
        class DyingChunks:
            def commit(self, ops):
                raise RuntimeError("device died")

        committer = GroupCommitter(DyingChunks())
        with pytest.raises(RuntimeError, match="device died"):
            committer.commit(["a"])
        assert committer.stats()["batches"] == 0


# ---------------------------------------------------------------------------
# MVCC snapshot semantics (real store)
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_snapshot_is_immune_to_later_commits(self):
        _, _, objects, pid = make_stack()
        ref = ObjectRef(pid, 0)
        with objects.transaction() as tx:
            tx.create_at(ref, "v0")
        with TDBServer(objects) as server, server.session() as session:
            old = session.snapshot(pid)
            assert old.get(ref) == "v0"
            with session.transaction() as tx:
                tx.update(ref, "v1")
            # the held snapshot still serves the state it froze...
            assert old.get(ref) == "v0"
            # ...while a fresh snapshot sees the new commit
            with session.snapshot(pid) as new:
                assert new.get(ref) == "v1"
                assert new is not old
                assert new.version > old.version
            old.release()

    def test_concurrent_readers_share_one_snapshot(self):
        _, chunks, objects, pid = make_stack()
        with objects.transaction() as tx:
            tx.create_at(ObjectRef(pid, 0), 1)
        with TDBServer(objects) as server, server.session() as session:
            first = session.snapshot(pid)
            second = session.snapshot(pid)
            assert first is second  # refcounted share, one chunk view
            assert chunks.snapshot_pins == 1
            first.release()
            assert chunks.snapshot_pins == 1  # still held by `second`
            second.release()
            # unreleased but non-stale snapshots stay current; a commit
            # would invalidate and dispose them
            with session.transaction() as tx:
                tx.update(ObjectRef(pid, 0), 2)
            assert chunks.snapshot_pins == 0

    def test_missing_object_raises_object_not_found(self):
        _, _, objects, pid = make_stack()
        with objects.transaction() as tx:
            tx.create_at(ObjectRef(pid, 0), "root")
        with TDBServer(objects) as server, server.session() as session:
            with session.snapshot(pid) as snapshot:
                with pytest.raises(ObjectNotFoundError):
                    snapshot.get(ObjectRef(pid, 7))
                with pytest.raises(ObjectNotFoundError):
                    snapshot.get(ObjectRef(pid + 1, 0))  # wrong partition
                assert not snapshot.exists(ObjectRef(pid, 7))
                assert snapshot.exists(ObjectRef(pid, 0))

    def test_open_view_defers_the_cleaner(self):
        from repro.chunkstore.cleaner import Cleaner

        _, chunks, objects, pid = make_stack()
        with objects.transaction() as tx:
            tx.create_at(ObjectRef(pid, 0), "x")
        view = chunks.open_snapshot_view(pid)
        try:
            assert chunks.snapshot_pins == 1
            assert Cleaner(chunks).clean_one() is None  # deferred, not run
        finally:
            chunks.close_snapshot_view(view)
            chunks.close_snapshot_view(view)  # idempotent
        assert chunks.snapshot_pins == 0

    def test_close_detaches_the_commit_seam(self):
        _, _, objects, pid = make_stack()
        server = TDBServer(objects)
        assert objects.committer is server.committer
        server.close()
        assert objects.committer is None
        # plain transactions still work after the server is gone
        with objects.transaction() as tx:
            tx.create_at(ObjectRef(pid, 0), "after")
        assert objects.read_committed(ObjectRef(pid, 0)) == "after"

    def test_closed_server_and_session_refuse_work(self):
        _, _, objects, _ = make_stack()
        server = TDBServer(objects)
        session = server.session()
        session.close()
        with pytest.raises(RuntimeError):
            session.transaction()
        server.close()
        with pytest.raises(RuntimeError):
            server.session()


# ---------------------------------------------------------------------------
# End-to-end stress: writers + snapshot readers, then crash recovery
# ---------------------------------------------------------------------------


class TestServerStress:
    WRITERS = 4
    TXS = 6
    READERS = 2

    def test_writers_and_readers_then_crash_recovery(self):
        platform, chunks, objects, pid = make_stack()
        refs = [ObjectRef(pid, rank) for rank in range(self.WRITERS)]
        with objects.transaction() as tx:
            for ref in refs:
                tx.create_at(ref, 0)

        errors = []
        stop = threading.Event()
        with TDBServer(objects, max_batch=8) as server:

            def writer(ref):
                try:
                    with server.session() as session:
                        for _ in range(self.TXS):
                            with session.transaction() as tx:
                                tx.update(ref, tx.get_for_update(ref) + 1)
                except BaseException as exc:
                    errors.append(exc)

            def reader():
                try:
                    with server.session() as session:
                        while not stop.is_set():
                            with session.snapshot(pid) as snapshot:
                                seen = [snapshot.get(r) for r in refs]
                                again = [snapshot.get(r) for r in refs]
                                # repeatable reads within one snapshot,
                                # values never out of a writer's range
                                assert seen == again
                                assert all(0 <= v <= self.TXS for v in seen)
                            time.sleep(0.001)
                except BaseException as exc:
                    errors.append(exc)

            writers = [
                threading.Thread(target=writer, args=(ref,)) for ref in refs
            ]
            readers = [
                threading.Thread(target=reader) for _ in range(self.READERS)
            ]
            for thread in writers + readers:
                thread.start()
            _join(writers, timeout=30.0)
            stop.set()
            _join(readers)
            assert errors == []

            # every commit is in: each counter shows all its increments
            with server.session() as session, session.snapshot(pid) as snap:
                assert [snap.get(r) for r in refs] == [self.TXS] * self.WRITERS
            stats = server.stats()
            assert (
                stats["group_commit"]["txs_committed"]
                == self.WRITERS * self.TXS
            )
            assert stats["group_commit"]["fallbacks"] == 0
            assert stats["objectstore"]["locks"]["deadlocks_broken"] == 0

        # group commits flush before acking, so a crash right after the
        # last ack must lose nothing: reboot and roll the log forward
        platform.reboot()
        recovered = ObjectStore(ChunkStore.open(platform, make_config()))
        for ref in refs:
            assert recovered.read_committed(ref) == self.TXS
