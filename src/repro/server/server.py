"""The threaded multi-client front end over one trusted store.

One :class:`TDBServer` wraps one
:class:`~repro.objectstore.store.ObjectStore` (and hence one
:class:`~repro.chunkstore.store.ChunkStore`).  Clients open
:class:`Session` handles — typically one per thread — and use them for:

* **writes**: ordinary serializable transactions.  Installing the server
  routes every transaction commit through the
  :class:`~repro.server.group_commit.GroupCommitter`, so commits arriving
  concurrently from different sessions share one log flush.
* **reads**: :meth:`Session.snapshot` hands back an MVCC snapshot served
  lock-free; heavy readers never queue behind the commit path.
  Transactional reads (``tx.get``) remain available when a reader needs
  strict serializability against its own writes.

Mid-commit visibility rules (documented in DESIGN.md): a snapshot shows
only states that were durably committed at acquire time; a group commit
becomes visible to *new* snapshots the moment its batch's flush returns,
atomically for the whole batch; snapshots already handed out never change.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Iterable, Optional

from repro import obs
from repro.objectstore.pickling import ObjectRef
from repro.objectstore.store import ObjectStore, Transaction
from repro.server.group_commit import GroupCommitter
from repro.server.snapshots import Snapshot, SnapshotManager


class TDBServer:
    """Multiplexes many client sessions onto one object/chunk store."""

    def __init__(
        self,
        objects: ObjectStore,
        max_batch: int = 64,
        snapshot_mode: str = "view",
    ) -> None:
        self.objects = objects
        self.committer = GroupCommitter(
            objects.chunks, max_batch=max_batch, on_commit=self._after_commit
        )
        self.snapshots = SnapshotManager(objects, mode=snapshot_mode)
        self._session_ids = itertools.count(1)
        self._mutex = threading.Lock()
        self._open_sessions = 0
        self._closed = False
        # install the group-commit seam; Transaction.commit routes every
        # ops batch through it from now on
        objects.committer = self.committer

    # -- sessions ------------------------------------------------------------

    def session(self) -> "Session":
        with self._mutex:
            if self._closed:
                raise RuntimeError("server is closed")
            self._open_sessions += 1
            return Session(self, next(self._session_ids))

    def _session_closed(self) -> None:
        with self._mutex:
            self._open_sessions = max(0, self._open_sessions - 1)

    # -- commit fan-in -------------------------------------------------------

    def _after_commit(self, touched: Iterable[int]) -> None:
        """Group-commit hook: newly durable partitions need fresh
        snapshots for subsequent readers."""
        self.snapshots.invalidate_many(touched)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
        self.snapshots.close_all()
        # detach the seam: later transactions commit the plain way
        if self.objects.committer is self.committer:
            self.objects.committer = None

    def __enter__(self) -> "TDBServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._mutex:
            open_sessions = self._open_sessions
        return {
            "open_sessions": open_sessions,
            "group_commit": self.committer.stats(),
            "snapshots": self.snapshots.stats(),
            "objectstore": self.objects.stats(),
            "chunkstore_snapshots": self.objects.chunks.stats()["snapshots"],
        }


class Session:
    """One client's handle on the server (use from a single thread)."""

    def __init__(self, server: TDBServer, session_id: int) -> None:
        self.server = server
        self.session_id = session_id
        self._closed = False
        self.commits = 0
        self.snapshot_reads = 0

    # -- writes --------------------------------------------------------------

    def transaction(self) -> Transaction:
        """A serializable read-write transaction (commits are grouped)."""
        self._require_open()
        return self.server.objects.transaction()

    # -- reads ---------------------------------------------------------------

    def snapshot(self, pid: int) -> Snapshot:
        """A consistent lock-free view of ``pid``'s committed objects."""
        self._require_open()
        return self.server.snapshots.acquire(pid)

    def read(self, ref: ObjectRef) -> Any:
        """Convenience one-shot snapshot read of a single object."""
        self._require_open()
        with self.snapshot(ref.partition) as snapshot:
            value = snapshot.get(ref)
        self.snapshot_reads += 1
        return value

    # -- lifecycle -----------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"session {self.session_id} is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.server._session_closed()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
