"""Robustness: oversize values, failed commits, unicode keys, and other
ways applications lean on the stack."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import ChunkStoreError, ObjectNotFoundError, TransactionError
from repro.kv import TrustedKV
from repro.objectstore import ObjectStore
from tests.conftest import make_config, make_platform


class TestOversizeValues:
    def test_chunk_store_rejects_before_mutating(self):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"small")])
        with pytest.raises(ChunkStoreError):
            store.commit([ops.WriteChunk(pid, rank, b"x" * 9000)])
        # the failed commit mutated nothing
        assert store.read_chunk(pid, rank) == b"small"
        store.commit([ops.WriteChunk(pid, rank, b"still works")])
        assert store.read_chunk(pid, rank) == b"still works"

    def test_transaction_aborts_cleanly_on_oversize_object(self):
        platform = make_platform()
        chunks = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        objects = ObjectStore(chunks)
        pid = objects.create_partition(cipher_name="null", hash_name="sha1")
        with objects.transaction() as tx:
            keep = tx.create(pid, "keep me")
        tx = objects.transaction()
        tx.update(keep, "would be lost")
        tx.create(pid, b"y" * 9000)  # exceeds the segment limit
        with pytest.raises(ChunkStoreError):
            tx.commit()
        assert tx.status.value == "aborted"
        assert objects.read_committed(keep) == "keep me"
        # locks were released: a new transaction can proceed
        with objects.transaction() as tx2:
            tx2.update(keep, "fresh")
        assert objects.read_committed(keep) == "fresh"

    def test_failed_commit_leaves_store_recoverable(self):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"base"),
            ]
        )
        with pytest.raises(ChunkStoreError):
            store.commit([ops.WriteChunk(pid, 0, b"z" * 9000)])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, 0) == b"base"


class TestUnicodeAndOddKeys:
    def test_kv_unicode_keys(self):
        kv = TrustedKV.create(make_platform(size=16 * 1024 * 1024))
        kv["clé-française"] = 1
        kv["ключ"] = 2
        kv["鍵"] = 3
        kv[""] = "empty key is a key"
        assert kv["ключ"] == 2
        assert kv[""] == "empty key is a key"
        assert set(kv.keys()) == {"clé-française", "ключ", "鍵", ""}

    def test_kv_values_of_many_shapes(self):
        kv = TrustedKV.create(make_platform(size=16 * 1024 * 1024))
        shapes = {
            "none": None,
            "bytes": b"\x00\xff" * 10,
            "nested": {"a": [1, (2, 3), {4, 5}]},
            "float": -1.5e300,
        }
        kv.put_many(shapes)
        for key, value in shapes.items():
            assert kv[key] == value


class TestApiMisuse:
    def test_read_of_foreign_partition_object(self):
        platform = make_platform()
        chunks = ChunkStore.format(platform, make_config())
        objects = ObjectStore(chunks)
        from repro.objectstore import ObjectRef

        with pytest.raises((ObjectNotFoundError, Exception)):
            objects.read_committed(ObjectRef(77, 0))

    def test_use_after_close(self):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        store.close()
        with pytest.raises(ChunkStoreError):
            store.checkpoint()
        store.close()  # idempotent

    def test_transaction_after_abort_rejected(self):
        platform = make_platform()
        chunks = ChunkStore.format(platform, make_config())
        objects = ObjectStore(chunks)
        pid = objects.create_partition(cipher_name="null", hash_name="sha1")
        tx = objects.transaction()
        tx.abort()
        with pytest.raises(TransactionError):
            tx.create(pid, "x")
