"""Workload-machinery unit tests: spread arithmetic, object synthesis,
adapter peek accounting, and the XDB-side bind experiment."""

import pytest

from repro.bench.workload import (
    FIGURE_10,
    Workload,
    _spread,
    make_object,
    make_schema,
)


class TestSpread:
    def test_even(self):
        assert _spread(20, 10) == [2] * 10

    def test_remainder_front_loaded(self):
        assert _spread(7, 3) == [3, 2, 2]

    def test_zero(self):
        assert _spread(0, 4) == [0, 0, 0, 0]

    def test_sum_preserved(self):
        for total in (1, 13, 781, 733):
            for buckets in (1, 3, 10, 20):
                assert sum(_spread(total, buckets)) == total

    def test_figure10_budgets_sum(self):
        for kind, mix in FIGURE_10.items():
            for op, total in mix.items():
                if op == "commit":
                    continue
                assert sum(_spread(total, 10)) == total


class TestObjects:
    def test_object_fields(self):
        import random

        obj = make_object(random.Random(1), "goods", 7)
        assert obj["type"] == "goods"
        assert obj["ident"] == 7
        assert 0 <= obj["price"] <= 999
        assert isinstance(obj["payload"], bytes)

    def test_deterministic_given_seed(self):
        import random

        a = make_object(random.Random(5), "goods", 1)
        b = make_object(random.Random(5), "goods", 1)
        assert a == b


class TestAdapterAccounting:
    def test_peek_does_not_count(self):
        from repro.bench.adapters import TdbAdapter
        from repro.bench.workload import make_schema

        adapter = TdbAdapter()
        spec = make_schema()[0]
        adapter.begin()
        coll = adapter.create_collection(spec)
        handle = adapter.insert(coll, {"ident": 1, "price": 2, "owner": 3,
                                       "status": "active", "uses": 0,
                                       "payload": b""})
        adapter.commit()
        adapter.begin()
        before = dict(adapter.op_counts)
        adapter.peek(coll, handle)
        assert adapter.op_counts == before
        adapter.read(coll, handle)
        assert adapter.op_counts["read"] == before["read"] + 1
        adapter.commit()


@pytest.mark.slow
class TestXdbBind:
    def test_xdb_bind_counts(self):
        from repro.bench.adapters import XdbAdapter

        workload = Workload(XdbAdapter())
        workload.setup()
        assert workload.run_experiment("bind") == FIGURE_10["bind"]
