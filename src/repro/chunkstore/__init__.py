"""The chunk store: TDB's trusted, log-structured storage core (§3–§5).

Public API re-exports::

    from repro.chunkstore import ChunkStore, StoreConfig, ops

    platform = TrustedPlatform.create_in_memory()
    store = ChunkStore.format(platform)
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid), ops.WriteChunk(pid, 0, b"hello")])
    assert store.read_chunk(pid, 0) == b"hello"
"""

from repro.chunkstore import ops
from repro.chunkstore.config import StoreConfig
from repro.chunkstore.descriptor import ChunkDescriptor, ChunkStatus
from repro.chunkstore.ids import SYSTEM_PARTITION, ChunkId
from repro.chunkstore.ops import (
    CopyPartition,
    DeallocateChunk,
    DeallocatePartition,
    WriteChunk,
    WritePartition,
)
from repro.chunkstore.store import ChunkStore, DiffChange

__all__ = [
    "ChunkStore",
    "StoreConfig",
    "DiffChange",
    "ChunkId",
    "ChunkDescriptor",
    "ChunkStatus",
    "SYSTEM_PARTITION",
    "ops",
    "WriteChunk",
    "DeallocateChunk",
    "WritePartition",
    "CopyPartition",
    "DeallocatePartition",
]
