"""Exception hierarchy for the TDB reproduction.

The one exception that carries the paper's security semantics is
:class:`TamperDetectedError`: it is raised whenever validation of data read
from the untrusted store fails, i.e. whenever an untrusted program has
modified (or replayed) state that a trusted program later reads.
"""

from __future__ import annotations


class TDBError(Exception):
    """Base class for all errors raised by the TDB reproduction."""


class TamperDetectedError(TDBError):
    """Validation of untrusted data failed.

    Raised on hash mismatches, signature failures, residual-log sequence
    violations, replay detection, or any other evidence that the untrusted
    store no longer reflects the state written by the trusted program.
    """


class CryptoUnavailableError(TDBError):
    """A registered cipher's backend is not present in this build.

    Raised when a partition or store names an AEAD suite
    (``aes-256-gcm`` / ``chacha20-poly1305``) but the ``cryptography``
    AEAD backend is missing or disabled via ``REPRO_NO_CRYPTO_ACCEL``.
    The refusal is deliberate and loud: the legacy suites have bit-exact
    pure-Python fallbacks, the AEAD tier does not, and silently
    downgrading an *authenticating* cipher to a non-authenticating one
    would weaken the validation the caller asked for.
    """


class SecrecyError(TDBError):
    """An operation would violate the secrecy contract (e.g. reading the
    secret store from an untrusted context in the simulated platform)."""


class ChunkStoreError(TDBError):
    """Base class for chunk-store usage errors."""


class ChunkNotAllocatedError(ChunkStoreError):
    """A chunk id was used that is not currently allocated."""


class ChunkNotWrittenError(ChunkStoreError):
    """A chunk id was read before it was ever written (committed)."""


class PartitionError(ChunkStoreError):
    """Base class for partition-level usage errors."""


class PartitionNotFoundError(PartitionError):
    """A partition id was used that is not currently written."""


class StorageFullError(TDBError):
    """The untrusted store has no free segments left (even after cleaning)."""


class CrashError(TDBError):
    """Raised by the crash-injection machinery to simulate a fail-stop crash.

    Test harnesses install a crash point, run an operation, catch
    :class:`CrashError`, then re-open the store to exercise recovery.
    """


class IOFaultError(TDBError):
    """An untrusted-storage operation failed at the I/O level.

    Unlike :class:`TamperDetectedError` this carries no security meaning:
    the bytes were never delivered, so nothing was validated.  Raised by
    the fault-injection machinery (and, for a real deployment, the place
    to translate ``OSError``/network failures into the TDB hierarchy).
    """


class TransientIOError(IOFaultError):
    """A retryable I/O failure (dropped request, transient read error).

    The retry layer re-issues the operation; the error escapes to callers
    only once the retry policy's attempts or deadline are exhausted.
    """


class PermanentIOError(IOFaultError):
    """A non-retryable I/O failure (media damage, e.g. a bad sector).

    Retrying cannot help; the affected extent can only be healed by
    restoring its committed bytes from a backup copy elsewhere."""


class RemoteTimeoutError(TransientIOError):
    """A round trip to the remote untrusted server timed out (§10)."""


class PartialResponseError(TransientIOError):
    """A batched remote read returned fewer extents than requested."""


class QuarantineError(ChunkStoreError):
    """A chunk is quarantined: unreadable after retries were exhausted.

    Degraded mode (not fail-stop): only reads of the quarantined chunk
    raise this; unrelated chunks and partitions stay fully usable, and
    :meth:`ChunkStore.scrub` can later heal the quarantine by re-fetching
    or restoring from backup.
    """

    def __init__(self, chunk: str, cause: str) -> None:
        super().__init__(f"chunk {chunk} is quarantined ({cause})")
        #: string form of the quarantined chunk id
        self.chunk = chunk
        #: what put it there: "io" (unreadable) or "tamper" (validation)
        self.cause = cause


class BackupError(TDBError):
    """Base class for backup-store errors."""


class BackupIntegrityError(BackupError, TamperDetectedError):
    """A backup stream failed signature or checksum validation."""


class BackupOrderingError(BackupError):
    """A restore violated ordering constraints (missing base snapshot,
    incomplete backup set, or out-of-order incremental restore)."""


class ObjectStoreError(TDBError):
    """Base class for object-store usage errors."""


class ObjectNotFoundError(ObjectStoreError):
    """An object id was used that does not name a stored object."""


class TransactionError(ObjectStoreError):
    """Transaction misuse (commit after abort, use outside scope, ...)."""


class DeadlockError(TransactionError):
    """Lock acquisition timed out; the transaction was chosen as the victim
    and must abort (the paper breaks deadlocks with timeouts, §7)."""


class PicklingError(ObjectStoreError):
    """An object could not be pickled or unpickled."""


class IndexError_(TDBError):
    """Collection-store index misuse (named with a trailing underscore to
    avoid shadowing the builtin)."""


class XDBError(TDBError):
    """Base class for errors from the XDB baseline system."""
