"""Commit operations (§4.1, §5.1).

A commit atomically applies a set of operations: chunk writes and
deallocations, and partition writes (create / copy) and deallocations.
Grouping them in one commit is what lets an application, e.g., store the
id of a newly-written partition into a chunk of an existing partition in
one atomic step (§5.1), or store a newly-allocated chunk id in another
chunk during the same commit (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WriteChunk:
    """Set the state of data chunk ``(partition, rank)`` to ``data``."""

    partition: int
    rank: int
    data: bytes


@dataclass(frozen=True)
class DeallocateChunk:
    """Deallocate data chunk ``(partition, rank)``; the rank is reusable."""

    partition: int
    rank: int


@dataclass(frozen=True)
class WritePartition:
    """Set ``partition`` to an *empty* partition with its own cryptographic
    parameters (cipher/hash names from the crypto registry; ``key``
    generated if omitted).

    Writing an already-written partition id resets it to empty (the spec's
    literal semantics, §5.1) — the backup store uses this to replace a
    partition's contents on restore.  Existing copy relationships are
    preserved: copies keep their own (old) state, and the copy lists stay
    intact for the cleaner's currency checks.
    """

    partition: int
    cipher_name: str = "des-cbc"
    hash_name: str = "sha1"
    key: Optional[bytes] = None
    name: str = ""


@dataclass(frozen=True)
class CopyPartition:
    """Copy the current state of ``source`` to ``partition`` (copy-on-write
    snapshot; shares all chunks and inherits crypto parameters, §5.3)."""

    partition: int
    source: int


@dataclass(frozen=True)
class DeallocatePartition:
    """Deallocate ``partition``, all of its copies, and all their chunks."""

    partition: int
