"""Collection store (§8): collections of objects with functional indexes."""

from repro.collection.index import (
    DEFAULT_KEY_FUNCTIONS,
    Index,
    KeyFunctionRegistry,
    field_key,
    register_key_function,
)
from repro.collection.store import Collection, CollectionStore

__all__ = [
    "CollectionStore",
    "Collection",
    "Index",
    "KeyFunctionRegistry",
    "DEFAULT_KEY_FUNCTIONS",
    "register_key_function",
    "field_key",
]
