"""§2.2 "Database size" — the paper's scalability claims, quantified.

"TDB allows the database to scale with gradual performance degradation.
It uses scalable data structures and fetches data piecemeal on demand.
However, it relies on a cacheable working set for performance because its
log-structured storage may destroy physical clustering."

Three checks:

* cached-read and commit latency stay flat as the database grows
  (the map tree adds a level per 64× growth — 'gradual');
* cold reads grow logarithmically (map depth), not linearly;
* a working set that fits the descriptor cache keeps its hit rate as the
  rest of the database grows around it.
"""

import time

from benchmarks.conftest import bench_store, data_partition, report
from repro.chunkstore import ops


def _best_of(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _populate(store, pid, count, size=200):
    for start in range(0, count, 128):
        ranks = [store.allocate_chunk(pid) for _ in range(min(128, count - start))]
        store.commit([ops.WriteChunk(pid, r, b"\x2e" * size) for r in ranks])
    store.checkpoint()


def test_latency_vs_database_size(benchmark):
    sizes = (500, 2000, 8000)
    warm_reads = {}
    cold_reads = {}
    commits = {}
    for count in sizes:
        platform, store = bench_store(
            size=256 * 1024 * 1024, segment_size=256 * 1024, fanout=16
        )
        pid = data_partition(store)
        _populate(store, pid, count)
        probe = count // 2
        store.read_chunk(pid, probe)
        warm_reads[count] = _best_of(lambda: store.read_chunk(pid, probe))

        def cold():
            store.cache.clear()
            store.read_chunk(pid, probe)

        cold_reads[count] = _best_of(cold)

        def one_commit():
            rank = store.allocate_chunk(pid)
            store.commit([ops.WriteChunk(pid, rank, b"\x2e" * 200)])

        commits[count] = _best_of(one_commit)
    benchmark(lambda: None)  # the sweep above is the measurement
    rows = []
    for count in sizes:
        rows.append(
            (
                f"{count} chunks",
                f"warm {warm_reads[count]*1e6:.0f} µs / cold "
                f"{cold_reads[count]*1e6:.0f} µs / commit "
                f"{commits[count]*1e6:.0f} µs",
                "gradual degradation",
            )
        )
    report("§2.2 scalability", rows)
    # warm reads and commits must not degrade with size (allow 3x noise)
    assert warm_reads[8000] < warm_reads[500] * 3 + 1e-4
    assert commits[8000] < commits[500] * 3 + 1e-4
    # cold reads may grow with map depth but far sublinearly: 16x data,
    # at most ~one extra map level
    assert cold_reads[8000] < cold_reads[500] * 4 + 1e-3


def test_working_set_cache_hit_rate(benchmark):
    """A cached working set keeps its hit rate as the database grows."""
    platform, store = bench_store(
        size=256 * 1024 * 1024, segment_size=256 * 1024
    )
    pid = data_partition(store)
    _populate(store, pid, 6000)
    working_set = list(range(0, 100))
    for rank in working_set:
        store.read_chunk(pid, rank)  # warm
    store.cache.hits = store.cache.misses = 0
    for _round in range(20):
        for rank in working_set:
            store.read_chunk(pid, rank)
    hit_rate = store.cache.hits / (store.cache.hits + store.cache.misses)
    benchmark(lambda: store.read_chunk(pid, 50))
    report(
        "§2.2 working set",
        [("descriptor-cache hit rate", f"{hit_rate:.3f}", "≈1.0 once warm")],
    )
    assert hit_rate > 0.99
