"""Longevity soak: many generations of heavy mixed work, each ending in
a crash or clean close, with cleaning pressure throughout — the database
must stay correct and the log must not leak space across generations."""

import random

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import ChunkNotAllocatedError, ChunkNotWrittenError
from tests.conftest import make_config, make_platform


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["counter", "direct"])
def test_ten_generations_of_churn(mode):
    platform = make_platform(size=2 * 1024 * 1024)
    config = make_config(
        validation_mode=mode,
        segment_size=16 * 1024,
        delta_ut=3,
        checkpoint_dirty_threshold=60,
    )
    store = ChunkStore.format(platform, config)
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")])
    rng = random.Random(42)
    model = {}

    for generation in range(10):
        for _step in range(60):
            action = rng.random()
            if action < 0.6 or not model:
                rank = rng.randrange(30)
                state = store.partitions[pid]
                if not (
                    rank in state.pending_ranks or state.is_committed_written(rank)
                ):
                    state.allocate_specific(rank)
                data = bytes([generation]) * rng.randrange(50, 600)
                store.commit([ops.WriteChunk(pid, rank, data)])
                model[rank] = data
            elif action < 0.75:
                rank = rng.choice(list(model))
                store.commit([ops.DeallocateChunk(pid, rank)])
                del model[rank]
            elif action < 0.85:
                store.checkpoint()
            else:
                store.clean(max_segments=2)
        # end of generation: crash or clean close, then recover
        if generation % 2 == 0:
            platform.reboot()
        else:
            store.close()
            platform.reboot()
        store = ChunkStore.open(platform)
        # full verification every generation
        for rank, data in model.items():
            assert store.read_chunk(pid, rank) == data, (mode, generation, rank)
        for rank in range(30):
            if rank not in model:
                with pytest.raises((ChunkNotAllocatedError, ChunkNotWrittenError)):
                    store.read_chunk(pid, rank)
        # space sanity: live data fits in the model, store not leaking
        assert store.live_bytes() < platform.untrusted.size
    # after ten generations the store still accepts work
    state = store.partitions[pid]
    state.allocate_specific(31)
    store.commit([ops.WriteChunk(pid, 31, b"the end")])
    assert store.read_chunk(pid, 31) == b"the end"
