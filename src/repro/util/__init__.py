"""Small shared utilities: wire codecs, checksums, and byte helpers."""

from repro.util.codec import (
    Decoder,
    Encoder,
    decode_uvarint,
    encode_uvarint,
)
from repro.util.checksum import crc32_bytes

__all__ = [
    "Encoder",
    "Decoder",
    "encode_uvarint",
    "decode_uvarint",
    "crc32_bytes",
]
