"""Injectable time source for retry backoff and lock timeouts.

Retry backoff (:mod:`repro.platform.retry`) and deadlock timeouts
(:class:`repro.objectstore.locks.LockManager`) both need a notion of
elapsed time.  Production code uses :class:`SystemClock`; tests inject a
:class:`FakeClock` so that exponential backoff and two-second lock
timeouts complete instantly — no test ever sleeps on the wall clock.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source with sleep and condition-wait primitives."""

    @abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (backoff delays)."""

    @abstractmethod
    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        """Wait on ``condition`` (held) for up to ``timeout`` seconds.

        Returns ``True`` if notified, ``False`` on timeout — the same
        contract as :meth:`threading.Condition.wait`.
        """


class SystemClock(Clock):
    """Real wall-clock time (monotonic)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        return condition.wait(timeout=timeout)


class FakeClock(Clock):
    """Deterministic clock for tests: sleeping just advances ``now``.

    ``wait_on`` advances time by the full timeout and reports a timeout
    (``False``) — exactly what a deadlock-timeout test wants: the waiter
    "waits" its whole budget without notification, instantly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        self._now += seconds

    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        self._now += max(timeout, 0.0)
        return False
