"""Unit and property tests for the binary codec (repro.util.codec)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.codec import Decoder, Encoder, decode_uvarint, encode_uvarint


class TestUvarint:
    def test_zero(self):
        assert encode_uvarint(0) == b"\x00"
        assert decode_uvarint(b"\x00") == (0, 1)

    def test_small_values_are_one_byte(self):
        for value in range(128):
            assert len(encode_uvarint(value)) == 1

    def test_boundary_128(self):
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        data = encode_uvarint(300)
        with pytest.raises(ValueError):
            decode_uvarint(data[:-1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"")

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=2**64))
    def test_roundtrip(self, value):
        data = encode_uvarint(value)
        decoded, offset = decode_uvarint(data)
        assert decoded == value
        assert offset == len(data)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 100))
    def test_decode_at_offset(self, value, pad):
        data = b"\x55" * pad + encode_uvarint(value)
        decoded, offset = decode_uvarint(data, pad)
        assert decoded == value
        assert offset == len(data)


class TestEncoderDecoder:
    def test_mixed_fields_roundtrip(self):
        enc = Encoder()
        enc.uint(42).int(-17).bool(True).float(3.5).bytes(b"abc").text("héllo")
        enc.opt_uint(None).opt_uint(9).raw(b"RAW")
        data = enc.finish()
        dec = Decoder(data)
        assert dec.uint() == 42
        assert dec.int() == -17
        assert dec.bool() is True
        assert dec.float() == 3.5
        assert dec.bytes() == b"abc"
        assert dec.text() == "héllo"
        assert dec.opt_uint() is None
        assert dec.opt_uint() == 9
        assert dec.raw(3) == b"RAW"
        dec.expect_exhausted()

    def test_trailing_bytes_detected(self):
        data = Encoder().uint(1).finish() + b"x"
        dec = Decoder(data)
        dec.uint()
        with pytest.raises(ValueError):
            dec.expect_exhausted()

    def test_truncated_bytes_field(self):
        data = Encoder().bytes(b"hello").finish()[:-2]
        with pytest.raises(ValueError):
            Decoder(data).bytes()

    def test_truncated_float(self):
        with pytest.raises(ValueError):
            Decoder(b"\x00" * 4).float()

    def test_invalid_bool_byte(self):
        with pytest.raises(ValueError):
            Decoder(b"\x02").bool()

    def test_len_tracks_parts(self):
        enc = Encoder()
        enc.uint(1).bytes(b"xy")
        assert len(enc) == len(enc.finish())

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_signed_roundtrip(self, value):
        data = Encoder().int(value).finish()
        assert Decoder(data).int() == value

    @given(st.binary(max_size=500))
    def test_bytes_roundtrip(self, blob):
        data = Encoder().bytes(blob).finish()
        assert Decoder(data).bytes() == blob

    @given(st.text(max_size=200))
    def test_text_roundtrip(self, text):
        data = Encoder().text(text).finish()
        assert Decoder(data).text() == text

    @given(st.floats(allow_nan=False))
    def test_float_roundtrip(self, value):
        data = Encoder().float(value).finish()
        assert Decoder(data).float() == value

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
    def test_uint_sequence_roundtrip(self, values):
        enc = Encoder()
        for value in values:
            enc.uint(value)
        dec = Decoder(enc.finish())
        assert [dec.uint() for _ in values] == values
        dec.expect_exhausted()
