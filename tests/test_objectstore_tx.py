"""Object store transactions (§7): 2PL, no-steal buffering, aborts,
deadlock breaking, persistence."""

import threading

import pytest

from repro.chunkstore import ChunkStore
from repro.errors import DeadlockError, ObjectNotFoundError, TransactionError
from repro.objectstore import ObjectRef, ObjectStore
from tests.conftest import make_config, make_platform


@pytest.fixture
def env():
    platform = make_platform(size=8 * 1024 * 1024)
    chunks = ChunkStore.format(platform, make_config())
    objects = ObjectStore(chunks, lock_timeout=0.3)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    return platform, chunks, objects, pid


class TestBasics:
    def test_create_get(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, {"n": 1})
        with objects.transaction() as tx:
            assert tx.get(ref) == {"n": 1}

    def test_update(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, {"n": 1})
        with objects.transaction() as tx:
            tx.update(ref, {"n": 2})
        assert objects.read_committed(ref) == {"n": 2}

    def test_delete(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "victim")
        with objects.transaction() as tx:
            tx.delete(ref)
        with pytest.raises(ObjectNotFoundError):
            objects.read_committed(ref)

    def test_read_own_writes(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "v1")
            assert tx.get(ref) == "v1"
            tx.update(ref, "v2")
            assert tx.get(ref) == "v2"

    def test_read_own_delete(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "v")
        with objects.transaction() as tx:
            tx.delete(ref)
            with pytest.raises(ObjectNotFoundError):
                tx.get(ref)

    def test_exists(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "v")
        with objects.transaction() as tx:
            assert tx.exists(ref)
            assert not tx.exists(ObjectRef(pid, 999))

    def test_missing_object(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            with pytest.raises(ObjectNotFoundError):
                tx.get(ObjectRef(pid, 42))

    def test_create_at_root(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            tx.create_at(objects.root_ref(pid), {"root": True})
        assert objects.read_committed(objects.root_ref(pid)) == {"root": True}

    def test_cross_partition_transaction(self, env):
        _, _, objects, pid = env
        pid2 = objects.create_partition(cipher_name="null", hash_name="sha1")
        with objects.transaction() as tx:
            r1 = tx.create(pid, "in p1")
            r2 = tx.create(pid2, "in p2")
        assert objects.read_committed(r1) == "in p1"
        assert objects.read_committed(r2) == "in p2"

    def test_completed_transaction_rejects_use(self, env):
        _, _, objects, pid = env
        tx = objects.transaction()
        ref = tx.create(pid, "v")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.get(ref)

    def test_op_counting(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "v")
        base = dict(objects.op_counts)
        with objects.transaction() as tx:
            tx.get(ref)
            tx.update(ref, "v2")
        assert objects.op_counts["read"] == base["read"] + 1
        assert objects.op_counts["update"] == base["update"] + 1
        assert objects.op_counts["commit"] == base["commit"] + 1


class TestAtomicityAndAborts:
    def test_abort_discards_all(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "keep")
        try:
            with objects.transaction() as tx:
                tx.update(ref, "discard")
                tx.create(pid, "also discard")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert objects.read_committed(ref) == "keep"

    def test_abort_releases_locks(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "v")
        tx1 = objects.transaction()
        tx1.update(ref, "locked")
        tx1.abort()
        with objects.transaction() as tx2:
            tx2.update(ref, "free again")
        assert objects.read_committed(ref) == "free again"

    def test_multi_object_commit_is_atomic_across_crash(self, env):
        from repro.errors import CrashError

        platform, chunks, objects, pid = env
        with objects.transaction() as tx:
            a = tx.create(pid, {"balance": 100})
            b = tx.create(pid, {"balance": 0})
        platform.injector.arm("commit.before_flush")
        with pytest.raises(CrashError):
            with objects.transaction() as tx:
                tx.update(a, {"balance": 50})
                tx.update(b, {"balance": 50})
        platform.injector.disarm()
        platform.reboot()
        chunks2 = ChunkStore.open(platform)
        objects2 = ObjectStore(chunks2)
        # the transfer happened entirely or not at all
        assert objects2.read_committed(a) == {"balance": 100}
        assert objects2.read_committed(b) == {"balance": 0}

    def test_no_steal_nothing_persists_before_commit(self, env):
        platform, chunks, objects, pid = env
        tx = objects.transaction()
        tx.create(pid, "uncommitted" * 10)
        stats_before = platform.untrusted.stats.bytes_written
        # nothing was written to the untrusted store by the buffered create
        assert platform.untrusted.stats.bytes_written == stats_before
        tx.abort()

    def test_abort_returns_allocated_ranks(self, env):
        _, chunks, objects, pid = env
        tx = objects.transaction()
        ref = tx.create(pid, "v")
        tx.abort()
        with objects.transaction() as tx2:
            ref2 = tx2.create(pid, "w")
        assert ref2.rank == ref.rank  # the rank was recycled


class TestConcurrency:
    def test_shared_readers_coexist(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "shared")
        results = []

        def reader():
            with objects.transaction() as tx:
                results.append(tx.get(ref))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["shared"] * 4

    def test_writer_blocks_writer(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, 0)
        order = []
        tx1 = objects.transaction()
        tx1.update(ref, 1)

        def second_writer():
            with objects.transaction() as tx2:
                tx2.update(ref, 2)
                order.append("tx2-wrote")

        thread = threading.Thread(target=second_writer)
        thread.start()
        order.append("tx1-committing")
        tx1.commit()
        thread.join()
        assert order == ["tx1-committing", "tx2-wrote"]
        assert objects.read_committed(ref) == 2

    def test_deadlock_broken_by_timeout(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            a = tx.create(pid, "a")
            b = tx.create(pid, "b")
        tx1 = objects.transaction()
        tx2 = objects.transaction()
        tx1.update(a, "a1")
        tx2.update(b, "b2")
        outcome = {}

        def cross():
            try:
                tx2.update(a, "a2")
                outcome["tx2"] = "ok"
                tx2.commit()
            except DeadlockError:
                outcome["tx2"] = "deadlock"
                tx2.abort()

        thread = threading.Thread(target=cross)
        thread.start()
        try:
            tx1.update(b, "b1")
            outcome["tx1"] = "ok"
            tx1.commit()
        except DeadlockError:
            outcome["tx1"] = "deadlock"
            tx1.abort()
        thread.join()
        assert "deadlock" in outcome.values()
        assert "ok" in outcome.values()

    def test_serializable_counter_increments(self, env):
        """Concurrent increments through get_for_update never lose
        updates (upgrade deadlocks abort and retry)."""
        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, 0)

        def increment():
            for _ in range(10):
                while True:
                    try:
                        with objects.transaction() as tx:
                            tx.update(ref, tx.get_for_update(ref) + 1)
                        break
                    except DeadlockError:
                        continue

        threads = [threading.Thread(target=increment) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert objects.read_committed(ref) == 30


class TestPersistence:
    def test_objects_survive_reopen(self, env):
        platform, chunks, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, {"durable": [1, 2, 3]})
        chunks.close()
        platform.reboot()
        chunks2 = ChunkStore.open(platform)
        objects2 = ObjectStore(chunks2)
        assert objects2.read_committed(ref) == {"durable": [1, 2, 3]}

    def test_cache_hit_avoids_chunk_read(self, env):
        platform, chunks, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "cached")
        platform.untrusted.stats.reset()
        objects.read_committed(ref)  # cache hit from the commit
        assert platform.untrusted.stats.reads == 0


class TestStats:
    def test_stats_exposes_ops_and_lock_tallies(self, env):
        _, _, objects, pid = env
        with objects.transaction() as tx:
            tx.create(pid, "counted")
        stats = objects.stats()
        assert stats["ops"]["add"] == 1
        assert stats["ops"]["commit"] == 1
        locks = stats["locks"]
        assert locks["waits"] == 0
        assert locks["deadlocks_broken"] == 0
        assert locks["active_transactions"] == 0  # released at commit

    def test_deadlock_surfaces_in_stats_and_event_log(self, env):
        from repro import obs

        _, _, objects, pid = env
        with objects.transaction() as tx:
            ref = tx.create(pid, "contended")
        mark = obs.events.mark()
        tx1 = objects.transaction()
        tx1.update(ref, "held")
        tx2 = objects.transaction()
        with pytest.raises(DeadlockError):
            tx2.update(ref, "blocked")
        tx2.abort()
        tx1.abort()
        stats = objects.stats()
        assert stats["locks"]["waits"] >= 1
        assert stats["locks"]["deadlocks_broken"] == 1
        broken = [
            e for e in obs.events.since(mark) if e.kind == "deadlock_broken"
        ]
        assert len(broken) == 1
        assert broken[0].fields["mode"] == "exclusive"

    def test_abort_emits_event(self, env):
        from repro import obs

        _, _, objects, pid = env
        mark = obs.events.mark()
        tx = objects.transaction()
        tx.create(pid, "doomed")
        tx.abort()
        aborts = [e for e in obs.events.since(mark) if e.kind == "tx_abort"]
        assert len(aborts) == 1
        assert aborts[0].fields["writes"] == 1


class TestAbortErrorHandling:
    def test_abort_records_swallowed_store_error(self, env, monkeypatch):
        """A typed store error while returning an aborted tx's allocations
        must not mask the abort — but it must be recorded, not dropped."""
        from repro import obs
        from repro.errors import ChunkStoreError

        _, chunks, objects, pid = env
        tx = objects.transaction()
        tx.create(pid, "doomed")
        state = chunks._state(pid)

        def boom(rank):
            raise ChunkStoreError("cancel_pending exploded")

        monkeypatch.setattr(state, "cancel_pending", boom)
        mark = obs.events.mark()
        tx.abort()  # must not raise
        swallowed = [
            e for e in obs.events.since(mark) if e.kind == "swallowed_error"
        ]
        assert len(swallowed) == 1
        assert swallowed[0].fields["where"] == (
            "transaction.abort.cancel_pending"
        )
        assert swallowed[0].fields["error"] == "ChunkStoreError"

    def test_abort_propagates_foreign_errors(self, env, monkeypatch):
        """Anything outside the store's error hierarchy is a genuine bug
        and must surface, not vanish into the abort path."""
        _, chunks, objects, pid = env
        tx = objects.transaction()
        tx.create(pid, "doomed")
        state = chunks._state(pid)

        def boom(rank):
            raise RuntimeError("not a store error")

        monkeypatch.setattr(state, "cancel_pending", boom)
        with pytest.raises(RuntimeError):
            tx.abort()
