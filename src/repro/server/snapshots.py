"""MVCC snapshot reads for the serving layer.

Readers get a :class:`Snapshot`: a consistent, read-only view of one
partition's committed objects, served entirely through a
:class:`~repro.chunkstore.snapshot.SnapshotView` — i.e. *without* the
chunk-store lock, so a long group-commit flush never stalls a reader and
a reader never delays the commit path.

Two flavors, same API:

* ``mode="view"`` (default) — freeze the partition's current committed
  state directly.  Cheap (no log traffic), ideal for serving reads of
  the latest committed data.  This reuses the copy-on-write leader
  snapshot (``LeaderPayload.copy_for_snapshot``) that partition copies
  are built from, without materializing a copy partition.
* ``mode="copy"`` — materialize a real
  :class:`~repro.chunkstore.ops.CopyPartition` and view that.  Costs a
  commit (and possibly a checkpoint) per snapshot, but the snapshot is a
  durable first-class partition — use when a snapshot must outlive the
  process or be diffed/backed up.

Snapshots are **refcounted and shared**: concurrent readers of the same
partition share one snapshot (and its object cache) until a group commit
invalidates it, after which the next reader gets a fresh one.  Stale
snapshots stay fully readable until their last reader releases them —
that is the isolation guarantee: a reader's view never changes mid-use.

Unpickled objects are cached per snapshot (never in the store's shared
``ObjectCache``, which tracks the latest committed state).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro import obs
from repro.chunkstore.ops import CopyPartition, DeallocatePartition
from repro.chunkstore.snapshot import SnapshotView
from repro.errors import ChunkNotAllocatedError, ObjectNotFoundError
from repro.objectstore.cache import ObjectCache
from repro.objectstore.pickling import ObjectRef, unpickle_value
from repro.objectstore.store import ObjectStore


class Snapshot:
    """A consistent read-only view of one partition's objects.

    Shared by concurrent readers; thread-safe.  Release with
    :meth:`release` (or a ``with`` block) — the underlying chunk-store
    view pins the cleaner until the last reader lets go.
    """

    def __init__(
        self,
        manager: "SnapshotManager",
        source_pid: int,
        view: SnapshotView,
        version: int,
        copy_pid: Optional[int] = None,
    ) -> None:
        self._manager = manager
        #: the partition this snapshot was taken of
        self.source_pid = source_pid
        #: the materialized copy partition (``mode="copy"`` only)
        self.copy_pid = copy_pid
        self.view = view
        #: monotonically increasing per-source version (diagnostics)
        self.version = version
        self._cache = ObjectCache(1024)
        self._refs = 0
        self._stale = False
        self._disposed = False

    # -- reads ---------------------------------------------------------------

    def get(self, ref: ObjectRef) -> Any:
        """Read one object as of this snapshot."""
        if ref.partition != self.source_pid:
            raise ObjectNotFoundError(
                f"{ref} is not in snapshot of partition {self.source_pid}"
            )
        present, value = self._cache.get(ref)
        if present:
            return value
        try:
            data = self.view.read_chunk(ref.rank)
        except ChunkNotAllocatedError as exc:
            raise ObjectNotFoundError(
                f"no object at {ref} as of this snapshot"
            ) from exc
        value = unpickle_value(data, self._manager.objects.registry)
        self._cache.put(ref, value)
        return value

    def get_many(self, refs: List[ObjectRef]) -> List[Any]:
        return [self.get(ref) for ref in refs]

    def exists(self, ref: ObjectRef) -> bool:
        return (
            ref.partition == self.source_pid
            and self.view.chunk_exists(ref.rank)
        )

    def root(self) -> Any:
        """The partition's conventional root object (rank 0)."""
        return self.get(ObjectRef(self.source_pid, 0))

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        self._manager.release(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class SnapshotManager:
    """Hands out refcounted, shared snapshots; invalidated on commit."""

    def __init__(self, objects: ObjectStore, mode: str = "view") -> None:
        if mode not in ("view", "copy"):
            raise ValueError(f"unknown snapshot mode {mode!r}")
        self.objects = objects
        self.chunks = objects.chunks
        self.mode = mode
        self._mutex = threading.Lock()
        #: source pid -> the snapshot new readers currently share
        self._current: Dict[int, Snapshot] = {}
        self._versions: Dict[int, int] = {}
        self.created = 0
        self.reused = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(self, pid: int) -> Snapshot:
        """Get a snapshot of ``pid``'s current committed state (shared
        with other readers until the next invalidation)."""
        with self._mutex:
            snapshot = self._current.get(pid)
            if snapshot is not None and not snapshot._stale:
                snapshot._refs += 1
                self.reused += 1
                return snapshot
        # build outside the manager mutex: snapshot creation takes the
        # chunk-store lock and must not serialize against release()
        fresh = self._build(pid)
        with self._mutex:
            current = self._current.get(pid)
            if current is not None and not current._stale:
                # someone else built one while we were building; share
                # theirs and discard ours
                current._refs += 1
                self.reused += 1
                self._dispose(fresh)
                return current
            if current is not None and current._refs == 0:
                self._dispose(current)
            self._current[pid] = fresh
            fresh._refs = 1
            self.created += 1
            return fresh

    def _build(self, pid: int) -> Snapshot:
        version = self._versions.get(pid, 0) + 1
        self._versions[pid] = version
        if self.mode == "copy":
            copy_pid = self.chunks.allocate_partition()
            self.chunks.commit([CopyPartition(copy_pid, pid)])
            view = self.chunks.open_snapshot_view(copy_pid)
            obs.add("server.snapshots_created")
            return Snapshot(self, pid, view, version, copy_pid=copy_pid)
        view = self.chunks.open_snapshot_view(pid)
        obs.add("server.snapshots_created")
        return Snapshot(self, pid, view, version)

    # -- invalidation and release -------------------------------------------

    def invalidate(self, pid: int) -> None:
        """A commit changed ``pid``: new readers need a fresh snapshot.
        Existing readers keep their (now stale) snapshot untouched."""
        with self._mutex:
            snapshot = self._current.get(pid)
            if snapshot is None:
                return
            snapshot._stale = True
            if snapshot._refs == 0:
                self._current.pop(pid, None)
                self._dispose(snapshot)

    def invalidate_many(self, pids) -> None:
        for pid in pids:
            self.invalidate(pid)

    def release(self, snapshot: Snapshot) -> None:
        with self._mutex:
            if snapshot._disposed:
                return
            snapshot._refs = max(0, snapshot._refs - 1)
            if snapshot._refs == 0 and snapshot._stale:
                if self._current.get(snapshot.source_pid) is snapshot:
                    self._current.pop(snapshot.source_pid, None)
                self._dispose(snapshot)

    def close_all(self) -> None:
        """Drop every managed snapshot (server shutdown)."""
        with self._mutex:
            for snapshot in list(self._current.values()):
                self._dispose(snapshot)
            self._current.clear()

    def _dispose(self, snapshot: Snapshot) -> None:
        if snapshot._disposed:
            return
        snapshot._disposed = True
        self.chunks.close_snapshot_view(snapshot.view)
        if snapshot.copy_pid is not None:
            self.chunks.commit([DeallocatePartition(snapshot.copy_pid)])

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._mutex:
            return {
                "mode": self.mode,
                "active": len(self._current),
                "created": self.created,
                "reused": self.reused,
            }
