"""The one-command report generator (python -m repro.bench.report)."""

import io

import pytest


class TestReport:
    def test_paper_constants_complete(self):
        from repro.bench.report import _PAPER_FIG12

        assert sum(_PAPER_FIG12.values()) == 99  # paper's rounded percentages

    @pytest.mark.slow
    def test_report_generates_markdown(self):
        from repro.bench.report import main

        out = io.StringIO()
        assert main(out=out) == 0
        text = out.getvalue()
        assert "Figure 10" in text
        assert "Figure 11" in text
        assert "Figure 12" in text
        assert "| read | 781 | 781 |" in text
        assert "TDB" in text and "XDB" in text
