"""ChunkStore.scrub(): full-database proactive validation."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.ids import data_id
from repro.errors import TamperDetectedError
from tests.conftest import make_config, make_platform


@pytest.fixture
def populated():
    platform = make_platform(size=8 * 1024 * 1024)
    store = ChunkStore.format(platform, make_config(fanout=4))
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")])
    for i in range(30):
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), f"v{i}".encode())])
    store.checkpoint()
    return platform, store, pid


class TestScrub:
    def test_clean_store_scrubs_clean(self, populated):
        platform, store, pid = populated
        report = store.scrub()
        assert report["corrupt"] == []
        # 30 data chunks + the partition leader + map chunks of both trees
        assert report["chunks_validated"] >= 31
        assert report["partitions"] == 2  # system + the data partition

    def test_scrub_detects_data_tamper(self, populated):
        platform, store, pid = populated
        descriptor = store._get_descriptor(data_id(pid, 7))
        offset = descriptor.location + descriptor.length - 2
        byte = platform.untrusted.tamper_read(offset, 1)
        platform.untrusted.tamper_write(offset, bytes([byte[0] ^ 1]))
        store.cache.clear()
        with pytest.raises(TamperDetectedError):
            store.scrub()

    def test_scrub_collect_mode_reports_ids(self, populated):
        platform, store, pid = populated
        for rank in (3, 9):
            descriptor = store._get_descriptor(data_id(pid, rank))
            offset = descriptor.location + descriptor.length - 2
            byte = platform.untrusted.tamper_read(offset, 1)
            platform.untrusted.tamper_write(offset, bytes([byte[0] ^ 1]))
        store.cache.clear()
        report = store.scrub(raise_on_first=False)
        assert f"{pid}:0.3" in report["corrupt"]
        assert f"{pid}:0.9" in report["corrupt"]

    def test_scrub_after_recovery(self, populated):
        platform, store, pid = populated
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.scrub()["corrupt"] == []

    def test_scrub_covers_snapshots(self, populated):
        platform, store, pid = populated
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        report = store.scrub()
        assert report["partitions"] == 3
