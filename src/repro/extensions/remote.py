"""Untrusted storage on servers (§10).

"TDB may be used to protect a database stored at an untrusted server.
This application of TDB may benefit from additional optimizations for
reducing network round-trips to the untrusted server, such as batching
reads and writes."

:class:`RemoteUntrustedStore` wraps any local
:class:`~repro.platform.untrusted.UntrustedStore` and accounts *round
trips*: each ``read``/``write``/``flush`` costs one, while ``read_many``
ships a batch of extents in a single round trip.  A
:class:`NetworkModel` turns the counts into modeled time, so benchmarks
can quantify the §10 batching optimisation without a real network.

Trust-wise nothing changes: the server is exactly as untrusted as a local
disk, so the same tamper API is exposed (the server operator *is* the
attacker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.platform.untrusted import UntrustedStore


@dataclass
class NetworkModel:
    """Latency model for a remote untrusted store."""

    #: one request/response round trip, seconds (LAN ≈ 0.5 ms, WAN ≈ 50 ms)
    round_trip_latency: float = 0.001
    #: payload bandwidth, bytes/second
    bandwidth: float = 10e6

    def time(self, round_trips: int, payload_bytes: int) -> float:
        return round_trips * self.round_trip_latency + payload_bytes / self.bandwidth


class RemoteUntrustedStore(UntrustedStore):
    """An untrusted store behind a (simulated) network."""

    def __init__(self, backing: UntrustedStore) -> None:
        super().__init__(backing.size, backing.injector)
        self._backing = backing
        self.round_trips = 0
        self.payload_bytes = 0
        #: writes queued on the client, shipped at flush in one round trip
        self._write_queue: List[Tuple[int, bytes]] = []

    # -- raw image ------------------------------------------------------------

    def _image_read(self, offset: int, size: int) -> bytes:
        return self._backing._image_read(offset, size)

    def _image_write(self, offset: int, data: bytes) -> None:
        self._backing._image_write(offset, data)

    # -- accounted operations ---------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        self.round_trips += 1
        self.payload_bytes += size
        return super().read(offset, size)

    def read_many(self, extents: List[Tuple[int, int]]) -> List[bytes]:
        """The §10 batching optimisation: one round trip for the batch."""
        if not extents:
            return []
        self.round_trips += 1
        self.payload_bytes += sum(size for _, size in extents)
        return super().read_many(extents)

    def write(self, offset: int, data: bytes) -> None:
        # writes are queued client-side; the flush ships them in one batch
        self.payload_bytes += len(data)
        super().write(offset, data)

    def flush(self) -> None:
        self.round_trips += 1  # the batched write + fsync request
        super().flush()

    def reset_accounting(self) -> None:
        self.round_trips = 0
        self.payload_bytes = 0
