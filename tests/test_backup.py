"""Backup store (§6): full/incremental creation, restore chains, set
completeness, signature/checksum validation, media-failure recovery."""

import pytest

from repro.backup import BackupStore
from repro.chunkstore import ChunkStore, ops
from repro.errors import (
    BackupError,
    BackupIntegrityError,
    BackupOrderingError,
    ChunkNotAllocatedError,
    TamperDetectedError,
)
from tests.conftest import make_config, make_platform


@pytest.fixture
def env():
    platform = make_platform(size=8 * 1024 * 1024)
    store = ChunkStore.format(platform, make_config())
    backup = BackupStore(store)
    pid = store.allocate_partition()
    store.commit(
        [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
    )
    for i in range(20):
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, f"orig-{i}".encode() * 4)])
    return platform, store, backup, pid


def fresh_db(platform):
    """A fresh database on a new untrusted store but the same secret
    store and archival store (the media-failure recovery scenario)."""
    from repro.platform import TrustedPlatform

    replacement = TrustedPlatform.create_in_memory(
        untrusted_size=8 * 1024 * 1024, secret=platform.secret_store.read()
    )
    replacement.archival = platform.archival
    store = ChunkStore.format(replacement, make_config())
    return replacement, store, BackupStore(store)


class TestCreation:
    def test_full_backup_then_incremental(self, env):
        platform, store, backup, pid = env
        info1 = backup.create_backup([pid], "b1")
        assert info1.incremental[pid] is False
        store.commit([ops.WriteChunk(pid, 0, b"changed")])
        info2 = backup.create_backup([pid], "b2")
        assert info2.incremental[pid] is True
        assert info2.bytes_written < info1.bytes_written

    def test_incremental_size_proportional_to_change(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "base")
        store.commit([ops.WriteChunk(pid, 0, b"x")])
        small = backup.create_backup([pid], "small")
        for rank in range(10):
            store.commit([ops.WriteChunk(pid, rank, b"y")])
        large = backup.create_backup([pid], "large")
        assert small.bytes_written < large.bytes_written

    def test_backup_does_not_disturb_source(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        assert store.read_chunk(pid, 3) == b"orig-3" * 4

    def test_multi_partition_set(self, env):
        platform, store, backup, pid = env
        pid2 = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid2, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid2, 0, b"second partition"),
            ]
        )
        info = backup.create_backup([pid, pid2], "multi")
        assert set(info.partitions) == {pid, pid2}

    def test_empty_partition_list_rejected(self, env):
        _, _, backup, _ = env
        with pytest.raises(BackupError):
            backup.create_backup([], "nope")

    def test_source_mutation_during_streaming_not_included(self, env):
        """The snapshot is the consistency point (§6.1): data written
        after the snapshot commit is absent from the backup."""
        platform, store, backup, pid = env
        info = backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"post-snapshot")])
        p2, store2, backup2 = fresh_db(platform)
        backup2.restore(["b1"])
        assert store2.read_chunk(pid, 0) == b"orig-0" * 4


class TestRestore:
    def test_full_restore_into_fresh_db(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        _, store2, backup2 = fresh_db(platform)
        restored = backup2.restore(["b1"])
        assert restored == [pid]
        for i in range(20):
            assert store2.read_chunk(pid, i) == f"orig-{i}".encode() * 4

    def test_incremental_chain_restore(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"v2")])
        backup.create_backup([pid], "b2")
        store.commit([ops.WriteChunk(pid, 1, b"v3")])
        new_rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, new_rank, b"brand new")])
        store.commit([ops.DeallocateChunk(pid, 5)])
        backup.create_backup([pid], "b3")
        _, store2, backup2 = fresh_db(platform)
        backup2.restore(["b1", "b2", "b3"])
        assert store2.read_chunk(pid, 0) == b"v2"
        assert store2.read_chunk(pid, 1) == b"v3"
        assert store2.read_chunk(pid, new_rank) == b"brand new"
        with pytest.raises(ChunkNotAllocatedError):
            store2.read_chunk(pid, 5)

    def test_restored_db_survives_reopen(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        p2, store2, backup2 = fresh_db(platform)
        backup2.restore(["b1"])
        store2.close()
        p2.reboot()
        reopened = ChunkStore.open(p2)
        assert reopened.read_chunk(pid, 7) == b"orig-7" * 4

    def test_restore_into_live_db_replaces_partition(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"newer than the backup")])
        backup.restore(["b1"])
        assert store.read_chunk(pid, 0) == b"orig-0" * 4

    def test_restore_approval_denied(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        with pytest.raises(BackupError):
            backup.restore(["b1"], approve=lambda descs: False)

    def test_restore_approval_sees_descriptors(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        seen = []
        backup.restore(["b1"], approve=lambda descs: seen.append(descs) or True)
        assert seen[0][0].source_pid == pid


class TestOrdering:
    def test_incremental_without_full_rejected(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"v2")])
        backup.create_backup([pid], "b2")
        _, _, backup2 = fresh_db(platform)
        with pytest.raises(BackupOrderingError):
            backup2.restore(["b2"])

    def test_skipping_a_link_rejected(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"v2")])
        backup.create_backup([pid], "b2")
        store.commit([ops.WriteChunk(pid, 0, b"v3")])
        backup.create_backup([pid], "b3")
        _, _, backup2 = fresh_db(platform)
        with pytest.raises(BackupOrderingError):
            backup2.restore(["b1", "b3"])  # b2 missing

    def test_replaying_same_incremental_rejected(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        store.commit([ops.WriteChunk(pid, 0, b"v2")])
        backup.create_backup([pid], "b2")
        _, _, backup2 = fresh_db(platform)
        backup2.restore(["b1", "b2"])
        with pytest.raises(BackupOrderingError):
            backup2.restore(["b2"])


class TestIntegrity:
    def test_tampered_stream_rejected(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        platform.archival.tamper_stream("b1", 200, b"\xff\xff")
        _, _, backup2 = fresh_db(platform)
        with pytest.raises(BackupIntegrityError):
            backup2.restore(["b1"])

    def test_truncated_stream_rejected(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        data = platform.archival.open_stream("b1")
        truncated = data.read(data.remaining - 10)
        writer = platform.archival.create_stream("b1")
        writer.write(truncated)
        platform.archival.commit_stream("b1", writer)
        _, _, backup2 = fresh_db(platform)
        with pytest.raises((BackupIntegrityError, BackupError, ValueError)):
            backup2.restore(["b1"])

    def test_backup_stream_does_not_leak_plaintext(self, env):
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        stream = platform.archival.open_stream("b1")
        raw = stream.read(stream.remaining)
        assert b"orig-0" not in raw

    def test_wrong_secret_cannot_restore(self, env):
        """A backup is only restorable on a platform holding the same
        secret (cipher-link from the secret store, §6.2)."""
        platform, store, backup, pid = env
        backup.create_backup([pid], "b1")
        from repro.platform import TrustedPlatform

        other = TrustedPlatform.create_in_memory(untrusted_size=8 * 1024 * 1024)
        other.archival = platform.archival
        store2 = ChunkStore.format(other, make_config())
        backup2 = BackupStore(store2)
        with pytest.raises((BackupIntegrityError, TamperDetectedError)):
            backup2.restore(["b1"])


class TestClock:
    def test_created_at_uses_the_platform_clock(self):
        """Regression: ``created_at`` must come from the injectable
        platform clock, not ``time.time()``, so tests (and any trusted
        program with its own time source) control backup timestamps."""
        from repro.platform.clock import FakeClock

        clock = FakeClock(start=1234.5)
        platform = make_platform(size=8 * 1024 * 1024, clock=clock)
        store = ChunkStore.format(platform, make_config())
        backup = BackupStore(store)
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"timed" * 4)])
        backup.create_backup([pid], "clocked")

        clock.advance(100.0)
        seen = []

        def approve(descriptors):
            seen.extend(d.created_at for d in descriptors)
            return False

        with pytest.raises(BackupError):
            backup.restore(["clocked"], approve=approve)
        assert seen == [1234.5]
