# Developer entry points for the TDB reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-crypto report examples lint all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-crypto:
	PYTHONPATH=src $(PYTHON) -m repro.bench.crypto_bench --out BENCH_crypto.json

report:
	$(PYTHON) -m repro.bench.report

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/digital_goods.py
	$(PYTHON) examples/backup_restore.py
	$(PYTHON) examples/tamper_demo.py
	$(PYTHON) examples/trusted_paging.py

all: test bench
