"""Backup sets spanning several partitions, longer incremental chains,
and the §6.3 set-completeness constraint exercised directly on the wire
format."""

import pytest

from repro.backup import BackupStore
from repro.backup.format import read_partition_backup, write_partition_backup
from repro.chunkstore import ChunkStore, ops
from repro.errors import BackupOrderingError
from tests.conftest import make_config, make_platform


def build(n_partitions=3, chunks_each=8):
    platform = make_platform(size=8 * 1024 * 1024)
    store = ChunkStore.format(platform, make_config())
    pids = []
    for p in range(n_partitions):
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        for i in range(chunks_each):
            rank = store.allocate_chunk(pid)
            store.commit([ops.WriteChunk(pid, rank, f"p{pid}c{i}".encode())])
        pids.append(pid)
    return platform, store, BackupStore(store), pids


def fresh_db(platform):
    from repro.platform import TrustedPlatform

    replacement = TrustedPlatform.create_in_memory(
        untrusted_size=8 * 1024 * 1024, secret=platform.secret_store.read()
    )
    replacement.archival = platform.archival
    store = ChunkStore.format(replacement, make_config())
    return replacement, store, BackupStore(store)


class TestMultiPartitionSets:
    def test_set_restores_all_partitions(self):
        platform, store, backup, pids = build()
        backup.create_backup(pids, "set1")
        _, store2, backup2 = fresh_db(platform)
        restored = backup2.restore(["set1"])
        assert sorted(restored) == sorted(pids)
        for pid in pids:
            assert store2.read_chunk(pid, 0) == f"p{pid}c0".encode()

    def test_snapshot_consistency_across_partitions(self):
        """All partitions snapshot in ONE commit: a cross-partition
        invariant written before the backup holds in the restore, and
        writes after the snapshot are excluded from every partition."""
        platform, store, backup, pids = build()
        # invariant: chunk 0 of every partition carries the same token
        store.commit([ops.WriteChunk(pid, 0, b"TOKEN-A") for pid in pids])
        backup.create_backup(pids, "consistent")
        store.commit([ops.WriteChunk(pid, 0, b"TOKEN-B") for pid in pids])
        _, store2, backup2 = fresh_db(platform)
        backup2.restore(["consistent"])
        values = {store2.read_chunk(pid, 0) for pid in pids}
        assert values == {b"TOKEN-A"}

    def test_incremental_chain_per_partition(self):
        platform, store, backup, pids = build(n_partitions=2)
        backup.create_backup(pids, "b1")
        store.commit([ops.WriteChunk(pids[0], 0, b"p0-updated")])
        backup.create_backup(pids, "b2")
        store.commit([ops.WriteChunk(pids[1], 0, b"p1-updated")])
        backup.create_backup(pids, "b3")
        _, store2, backup2 = fresh_db(platform)
        backup2.restore(["b1", "b2", "b3"])
        assert store2.read_chunk(pids[0], 0) == b"p0-updated"
        assert store2.read_chunk(pids[1], 0) == b"p1-updated"

    def test_long_incremental_chain(self):
        platform, store, backup, pids = build(n_partitions=1)
        pid = pids[0]
        streams = ["full"]
        backup.create_backup([pid], "full")
        for generation in range(6):
            store.commit(
                [ops.WriteChunk(pid, generation % 8, f"gen{generation}".encode())]
            )
            name = f"incr{generation}"
            info = backup.create_backup([pid], name)
            assert info.incremental[pid]
            streams.append(name)
        _, store2, backup2 = fresh_db(platform)
        backup2.restore(streams)
        for generation in range(6):
            expected = f"gen{generation}".encode()
            # later generations overwrite ranks 0..5; rank g holds gen g
            assert store2.read_chunk(pid, generation % 8) == expected

    def test_partial_set_rejected(self):
        """Drop one partition backup from a two-partition set: the
        set-size accounting must refuse the stream (§6.3)."""
        platform, store, backup, pids = build(n_partitions=2)
        backup.create_backup(pids, "pair")
        # rebuild a stream containing only the FIRST partition backup by
        # re-parsing and re-serialising one element
        from repro.chunkstore.config import backup_key
        from repro.crypto.mac import Mac
        from repro.crypto.registry import make_cipher, make_hash

        mac = Mac(backup_key(platform.secret_store.read()), make_hash("sha1"))
        reader = platform.archival.open_stream("pair")
        first = read_partition_backup(
            reader, store.codec.system_cipher, make_cipher, mac, make_hash
        )
        writer = platform.archival.create_stream("partial")
        partition_cipher = make_cipher(
            first.descriptor.cipher_name, first.descriptor.key
        )
        write_partition_backup(
            writer,
            first.descriptor,
            first.entries,
            store.codec.system_cipher,
            partition_cipher,
            mac,
            make_hash(first.descriptor.hash_name),
        )
        platform.archival.commit_stream("partial", writer)
        _, _, backup2 = fresh_db(platform)
        with pytest.raises(BackupOrderingError):
            backup2.restore(["partial"])
