#!/usr/bin/env python
"""The architecture argument, live (§1.2): uniform metadata protection.

Build the *same* logical database twice:

  1. TDB — trust integrated in the low-level data model: index nodes,
     allocation maps, and catalogs are chunks like everything else;
  2. SecureXDB — crypto layered on top of a conventional embedded
     database: records are encrypted and Merkle-hashed, but the
     database's own B-tree pages and catalog are naked.

Then run the paper's attack: "An attack could effectively delete an
object by modifying the indexes."  TDB detects it; the layered design
silently returns the wrong answer.

Run:  python examples/tamper_demo.py
"""

import struct

from repro import (
    ChunkStore,
    CollectionStore,
    ObjectStore,
    StoreConfig,
    TamperDetectedError,
    TrustedPlatform,
)
from repro.collection import KeyFunctionRegistry, field_key
from repro.platform import MemoryUntrustedStore, SecretStore, TamperResistantStore
from repro.xdb import SecureXDB
from repro.xdb.pager import PAGE_SIZE

TITLES = [f"song-{i:02d}" for i in range(40)]


def build_tdb():
    platform = TrustedPlatform.create_in_memory(untrusted_size=16 * 1024 * 1024)
    chunks = ChunkStore.format(platform, StoreConfig(system_cipher="ctr-sha256"))
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    registry = KeyFunctionRegistry()
    registry.register("title", field_key("title"))
    collections = CollectionStore(objects, pid, registry)
    with objects.transaction() as tx:
        goods = collections.create_collection(tx, "goods")
        collections.add_index(tx, goods, "by_title", "title")
        for title in TITLES:
            collections.insert(tx, goods, {"title": title, "owned": True})
    chunks.checkpoint()
    return platform, chunks, objects, collections, pid


def build_xdb():
    store = MemoryUntrustedStore(16 * 1024 * 1024)
    secure = SecureXDB.format(
        store, SecretStore.generate(), TamperResistantStore(),
        cipher_name="ctr-sha256",
    )
    goods = secure.create_collection("goods", {"by_title": lambda o: o["title"]})
    for title in TITLES:
        secure.insert(goods, {"title": title, "owned": True})
    secure.commit()
    return store, secure, goods


def main() -> None:
    target = "song-17"

    # --- the layered design: silent effective deletion ----------------------
    store, secure, goods = build_xdb()
    print("SecureXDB before attack:", len(secure.exact(goods, "by_title", target)),
          "hit(s) for", target)
    # the attacker wipes the index B-tree's root page — pure metadata
    index_root = goods.indexes["by_title"].root
    empty_leaf = struct.pack(">BH", 1, 0).ljust(PAGE_SIZE, b"\x00")
    store.tamper_write(index_root * PAGE_SIZE, empty_leaf)
    secure.db.pager._cache.clear()
    hits = secure.exact(goods, "by_title", target)
    print(f"SecureXDB after attack:  {len(hits)} hit(s) — the object has been "
          f"'deleted' WITHOUT DETECTION (its record still validates!)")
    assert hits == []

    # --- TDB: the same attack is detected ------------------------------------
    platform, chunks, objects, collections, pid = build_tdb()
    with objects.transaction() as tx:
        goods_coll = collections.open_collection(tx, "goods")
        print("\nTDB before attack:", len(
            collections.exact(tx, goods_coll, "by_title", target)), "hit(s)")

    # In TDB index nodes are encrypted chunks, indistinguishable from data
    # on the device.  Model the strongest realistic attacker: corrupt every
    # current chunk version of the partition (which necessarily includes
    # every index node).  Any lookup that touches corrupted state must now
    # raise — "effective deletion" is impossible without detection.
    from repro.chunkstore.ids import data_id

    for rank in chunks.data_ranks(pid):
        descriptor = chunks._get_descriptor(data_id(pid, rank))
        middle = descriptor.location + descriptor.length // 2
        byte = platform.untrusted.tamper_read(middle, 1)
        platform.untrusted.tamper_write(middle, bytes([byte[0] ^ 0xFF]))
    chunks.cache.clear()
    objects.cache.clear()
    try:
        with objects.transaction() as tx:
            goods_coll = collections.open_collection(tx, "goods")
            hits = collections.exact(tx, goods_coll, "by_title", target)
            for ref in hits:
                tx.get(ref)
        raise SystemExit("BUG: TDB failed to detect the index attack!")
    except TamperDetectedError as exc:
        print(f"TDB after attack: TAMPER DETECTED — {exc}")

    print("\nconclusion: integrating trust below the data model protects "
          "data and metadata uniformly (§1.2)")


if __name__ == "__main__":
    main()
