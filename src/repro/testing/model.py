"""A plain in-memory reference model of the chunk store's visible state.

The model implements the *specification* of §4–5 — named chunks grouped in
partitions, atomic commits, copy-on-write partition snapshots, cascading
partition deallocation — with none of the machinery (no log, no Merkle
tree, no crypto, no cleaning).  The differential runner drives identical
operation sequences against the model and the real
:class:`~repro.chunkstore.store.ChunkStore` and requires their visible
states to agree after every commit and after every crash + recovery.

Visible state is ``{pid: {rank: bytes}}``: which partitions exist, which
data ranks are written in each, and the exact bytes each one reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class ModelPartition:
    """One partition: its written chunks plus the copy relationships that
    drive cascading deallocation (§5.1)."""

    chunks: Dict[int, bytes] = field(default_factory=dict)
    copies: List[int] = field(default_factory=list)
    copy_of: Optional[int] = None


class ReferenceModel:
    """The executable specification the real store is compared against."""

    def __init__(self) -> None:
        self.partitions: Dict[int, ModelPartition] = {}

    # -- operations (mirroring repro.chunkstore.ops) -------------------------

    def write_partition(self, pid: int) -> None:
        """Create ``pid`` empty (reset semantics if it already exists:
        contents cleared, copy relationships preserved)."""
        existing = self.partitions.get(pid)
        part = ModelPartition()
        if existing is not None:
            part.copies = list(existing.copies)
            part.copy_of = existing.copy_of
        self.partitions[pid] = part

    def copy_partition(self, pid: int, source: int) -> None:
        src = self.partitions[source]
        self.partitions[pid] = ModelPartition(
            chunks=dict(src.chunks), copy_of=source
        )
        src.copies.append(pid)

    def deallocate_partition(self, pid: int) -> List[int]:
        """Deallocate ``pid`` and all transitive copies; returns the
        family actually removed."""
        family: List[int] = []
        queue = [pid]
        seen: Set[int] = set()
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            family.append(current)
            part = self.partitions.get(current)
            if part is not None:
                queue.extend(part.copies)
        for member in family:
            part = self.partitions.pop(member, None)
            if part is None:
                continue
            parent = part.copy_of
            if parent is not None and parent not in seen:
                parent_part = self.partitions.get(parent)
                if parent_part is not None and member in parent_part.copies:
                    parent_part.copies.remove(member)
        return family

    def write_chunk(self, pid: int, rank: int, data: bytes) -> None:
        self.partitions[pid].chunks[rank] = bytes(data)

    def deallocate_chunk(self, pid: int, rank: int) -> None:
        self.partitions[pid].chunks.pop(rank, None)

    # -- visible state --------------------------------------------------------

    def state(self) -> Dict[int, Dict[int, bytes]]:
        return {
            pid: dict(part.chunks) for pid, part in self.partitions.items()
        }


def observe_store(store) -> Dict[int, Dict[int, bytes]]:
    """The real store's visible state, read entirely through the validated
    read path (so tampering surfaces as :class:`TamperDetectedError`, never
    as a bogus observation)."""
    state: Dict[int, Dict[int, bytes]] = {}
    for pid in store.partition_ids():
        state[pid] = {
            rank: store.read_chunk(pid, rank) for rank in store.data_ranks(pid)
        }
    return state


def diff_states(
    expected: Dict[int, Dict[int, bytes]],
    actual: Dict[int, Dict[int, bytes]],
) -> List[str]:
    """Human-readable differences between two visible states (empty list
    means they agree)."""
    problems: List[str] = []
    for pid in sorted(set(expected) | set(actual)):
        if pid not in actual:
            problems.append(f"partition {pid} missing from store")
            continue
        if pid not in expected:
            problems.append(f"partition {pid} unexpectedly present in store")
            continue
        exp, act = expected[pid], actual[pid]
        for rank in sorted(set(exp) | set(act)):
            if rank not in act:
                problems.append(f"chunk {pid}:{rank} missing from store")
            elif rank not in exp:
                problems.append(f"chunk {pid}:{rank} unexpectedly written")
            elif exp[rank] != act[rank]:
                problems.append(
                    f"chunk {pid}:{rank} reads {act[rank]!r}, "
                    f"expected {exp[rank]!r}"
                )
    return problems
