"""§2.2 "Concurrent transactions" — characterize, honestly, the
low-concurrency design.

"TDB is not designed for simultaneous access by many users.  Therefore,
its concurrency control is geared to low concurrency.  It employs
techniques for reducing latency, but lacks sophisticated techniques for
sustaining throughput."  And §4.2: "serializability of operations is
provided through mutual exclusion, which does not overlap I/O and
computation."

Expected shape: correctness under concurrent transactions (verified),
with throughput that does *not* scale with thread count — the global
mutual exclusion is the design, not a bug.
"""

import threading
import time

from benchmarks.conftest import bench_store, data_partition, report
from repro.errors import DeadlockError
from repro.objectstore import ObjectStore


def _run_threads(objects, refs, threads, ops_per_thread=40):
    def worker(offset):
        for i in range(ops_per_thread):
            ref = refs[(offset + i) % len(refs)]
            while True:
                try:
                    with objects.transaction() as tx:
                        value = tx.get_for_update(ref)
                        tx.update(ref, value + 1)
                    break
                except DeadlockError:
                    continue

    workers = [threading.Thread(target=worker, args=(t * 7,)) for t in range(threads)]
    start = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    elapsed = time.perf_counter() - start
    return threads * ops_per_thread / elapsed


def test_throughput_vs_thread_count(benchmark):
    platform, store = bench_store()
    objects = ObjectStore(store, lock_timeout=1.0)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    with objects.transaction() as tx:
        refs = [tx.create(pid, 0) for _ in range(16)]

    results = {}
    for threads in (1, 2, 4):
        results[threads] = _run_threads(objects, refs, threads)

    # correctness: every increment landed exactly once
    total = sum(objects.read_committed(ref) for ref in refs)
    assert total == sum(t * 40 for t in (1, 2, 4))

    benchmark(lambda: _run_threads(objects, refs, 1, ops_per_thread=5))
    report(
        "§2.2 concurrency characterization",
        [
            (
                f"{threads} thread(s)",
                f"{results[threads]:.0f} tx/s",
                "throughput does not scale (mutual exclusion, §4.2)",
            )
            for threads in (1, 2, 4)
        ],
    )
    # the design claim: no meaningful scaling with threads
    assert results[4] < results[1] * 2
