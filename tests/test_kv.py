"""TrustedKV: the dict-like convenience API keeps every TDB property."""

import pytest

from repro.errors import ObjectNotFoundError, TamperDetectedError
from repro.kv import TrustedKV
from tests.conftest import make_platform


@pytest.fixture
def kv():
    return TrustedKV.create(make_platform(size=16 * 1024 * 1024))


class TestDictApi:
    def test_put_get(self, kv):
        kv.put("a", 1)
        kv["b"] = {"nested": [1, 2]}
        assert kv.get("a") == 1
        assert kv["b"] == {"nested": [1, 2]}

    def test_missing_key(self, kv):
        assert kv.get("nope") is None
        assert kv.get("nope", 42) == 42
        with pytest.raises(KeyError):
            kv["nope"]

    def test_overwrite(self, kv):
        kv["k"] = "v1"
        kv["k"] = "v2"
        assert kv["k"] == "v2"
        assert len(kv) == 1

    def test_delete(self, kv):
        kv["k"] = 1
        del kv["k"]
        assert "k" not in kv
        with pytest.raises(KeyError):
            del kv["k"]
        assert kv.delete("k") is False

    def test_contains_len(self, kv):
        for i in range(10):
            kv[f"key{i}"] = i
        assert len(kv) == 10
        assert "key3" in kv
        assert "key99" not in kv

    def test_keys_sorted(self, kv):
        for key in ("delta", "alpha", "charlie", "bravo"):
            kv[key] = 0
        assert kv.keys() == ["alpha", "bravo", "charlie", "delta"]

    def test_items(self, kv):
        kv.put_many({"a": 1, "b": 2})
        assert kv.items() == [("a", 1), ("b", 2)]

    def test_range(self, kv):
        for i in range(20):
            kv[f"user:{i:03d}"] = i
        kv["zother"] = -1
        got = kv.range("user:005", "user:008")
        assert got == [(f"user:{i:03d}", i) for i in range(5, 9)]
        assert kv.range(high="user:001") == [("user:000", 0), ("user:001", 1)]

    def test_put_many_atomic(self, kv):
        kv.put_many({f"k{i}": i for i in range(50)})
        assert len(kv) == 50
        assert kv["k49"] == 49


class TestDurabilityAndTrust:
    def test_reopen(self):
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform)
        kv["persist"] = [1, 2, 3]
        kv.close()
        platform.reboot()
        kv2 = TrustedKV.open(platform)
        assert kv2["persist"] == [1, 2, 3]

    def test_crash_recovery(self):
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform)
        kv["committed"] = "yes"
        platform.reboot()  # no clean close
        kv2 = TrustedKV.open(platform)
        assert kv2["committed"] == "yes"

    def test_open_without_layout(self):
        from repro.chunkstore import ChunkStore
        from tests.conftest import make_config

        platform = make_platform()
        ChunkStore.format(platform, make_config()).close()
        with pytest.raises(ObjectNotFoundError):
            TrustedKV.open(platform)

    def test_values_encrypted(self):
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform)
        kv["secret"] = "FINDME-KV-VALUE"
        assert b"FINDME-KV-VALUE" not in platform.untrusted.tamper_image()

    def test_replay_detected(self):
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform)
        kv["balance"] = 100
        kv.chunks.checkpoint()
        saved = platform.untrusted.tamper_image()
        for i in range(10):
            kv["balance"] = 100 - 10 * i
        kv.close(checkpoint=False)
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            TrustedKV.open(platform)

    def test_compact_reclaims(self):
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform)
        for round_no in range(30):
            kv.put_many({f"k{i}": f"{round_no}" * 50 for i in range(10)})
        stored_before = kv.chunks.stored_bytes()
        kv.compact()
        assert kv.chunks.stored_bytes() < stored_before
        assert kv["k5"] == "29" * 50  # last round's value survives compaction

    def test_custom_class_values(self):
        from repro.objectstore.pickling import PicklerRegistry

        registry = PicklerRegistry()

        class Money:
            def __init__(self, cents):
                self.cents = cents

            def __eq__(self, other):
                return self.cents == other.cents

        registry.register(50, Money, lambda m: m.cents, lambda c: Money(c))
        platform = make_platform(size=16 * 1024 * 1024)
        kv = TrustedKV.create(platform, registry=registry)
        kv["price"] = Money(999)
        assert kv["price"] == Money(999)
