"""Trusted paging (§10).

"The current design assumes that the entire runtime, volatile state of a
trusted program is protected by the trusted processing environment. ...
some volatile state may have to be paged out to untrusted storage.  This
problem may be solved by using a page fault handler to store encrypted
and validated pages in the chunk store."

:class:`TrustedPager` is that handler's storage half: a fixed-size paged
address space whose frames live in trusted memory (a small LRU working
set) and whose evicted pages are written — encrypted and validated — to a
dedicated chunk-store partition, one page per chunk.  Pages come back
through the normal read path, so a tampered page raises
:class:`~repro.errors.TamperDetectedError` at fault time instead of
silently corrupting the trusted program's memory.

Pages are *volatile* state: they do not need transactional durability,
only secrecy and integrity.  ``sync()`` commits dirty evictions in
batches; ``discard_all()`` drops the address space (e.g. on process
exit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.chunkstore.ops import DeallocatePartition, WriteChunk, WritePartition
from repro.chunkstore.store import ChunkStore
from repro.errors import ChunkNotWrittenError, ChunkNotAllocatedError


class TrustedPager:
    """Encrypted, validated backing store for paged-out trusted memory."""

    def __init__(
        self,
        chunks: ChunkStore,
        page_size: int = 4096,
        frames: int = 16,
        cipher_name: str = "ctr-sha256",
        hash_name: str = "sha1",
    ) -> None:
        self.chunks = chunks
        self.page_size = page_size
        self.frames = frames
        self.partition = chunks.allocate_partition()
        chunks.commit(
            [WritePartition(self.partition, cipher_name, hash_name)]
        )
        #: resident pages: page number -> bytearray frame
        self._resident: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        self.faults = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _frame(self, page_no: int) -> bytearray:
        """Fault the page in (allocating fresh zeroed pages on demand)."""
        if page_no in self._resident:
            self._resident.move_to_end(page_no)
            return self._resident[page_no]
        self.faults += 1
        state = self.chunks._state(self.partition)
        state.allocate_specific(page_no)
        try:
            content = bytearray(self.chunks.read_chunk(self.partition, page_no))
        except (ChunkNotWrittenError, ChunkNotAllocatedError):
            content = bytearray(self.page_size)  # first touch: zero page
        if len(content) != self.page_size:
            content = bytearray(content.ljust(self.page_size, b"\x00"))
        self._resident[page_no] = content
        self._dirty.setdefault(page_no, False)
        self._evict_if_needed()
        return content

    def _evict_if_needed(self) -> None:
        spill = []
        while len(self._resident) > self.frames:
            victim, frame = self._resident.popitem(last=False)
            if self._dirty.pop(victim, False):
                spill.append(WriteChunk(self.partition, victim, bytes(frame)))
            self.evictions += 1
        if spill:
            self.chunks.commit(spill)

    # ------------------------------------------------------------------

    def read(self, page_no: int, offset: int = 0, size: Optional[int] = None) -> bytes:
        """Read from a page (faulting it in if evicted)."""
        frame = self._frame(page_no)
        if size is None:
            size = self.page_size - offset
        return bytes(frame[offset : offset + size])

    def write(self, page_no: int, offset: int, data: bytes) -> None:
        """Write into a page (faulting it in if evicted)."""
        if offset + len(data) > self.page_size:
            raise ValueError("write crosses the page boundary")
        frame = self._frame(page_no)
        frame[offset : offset + len(data)] = data
        self._dirty[page_no] = True

    def sync(self) -> None:
        """Write every dirty resident page out (one commit)."""
        writes = [
            WriteChunk(self.partition, page_no, bytes(self._resident[page_no]))
            for page_no, dirty in self._dirty.items()
            if dirty and page_no in self._resident
        ]
        if writes:
            self.chunks.commit(writes)
        for page_no in self._dirty:
            self._dirty[page_no] = False

    def discard_all(self) -> None:
        """Drop the whole address space (the paged state is volatile)."""
        self._resident.clear()
        self._dirty.clear()
        self.chunks.commit([DeallocatePartition(self.partition)])

    @property
    def resident_pages(self) -> int:
        return len(self._resident)
