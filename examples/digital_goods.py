#!/usr/bin/env python
"""Digital-goods vending — the paper's motivating application (§1, §9.5).

A vendor *binds* contracts (pay-per-use, limited-trial, site-license) to
digital goods; a consumer *releases* (exercises) a good under one of its
contracts.  The sensitive state — account balances, remaining trial uses —
lives in a TDB database on the consumer's own machine, where the consumer
is precisely the attacker the system must resist.

The demo shows:
  * the collection store's functional indexes, including a *range query*
    over prices — possible because indexes sit below the crypto (§1.2);
  * pay-per-use debits and trial-count decrements as transactions;
  * the replay attack (§1): save the database, burn through the trial,
    restore the saved copy — and watch TDB refuse it.

Run:  python examples/digital_goods.py
"""

import random

from repro import (
    ChunkStore,
    CollectionStore,
    ObjectStore,
    StoreConfig,
    TamperDetectedError,
    TrustedPlatform,
)
from repro.collection import KeyFunctionRegistry, field_key


def build_store(platform):
    chunks = ChunkStore.format(
        platform, StoreConfig(system_cipher="ctr-sha256", delta_ut=1)
    )
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    registry = KeyFunctionRegistry()
    for key in ("title", "price", "good", "owner"):
        registry.register(key, field_key(key))
    collections = CollectionStore(objects, pid, registry)
    return chunks, objects, collections


def vendor_bind(objects, collections, title, price):
    """Bind three alternative contracts to a good (§9.5.1)."""
    with objects.transaction() as tx:
        goods = collections.open_collection(tx, "goods")
        contracts = collections.open_collection(tx, "contracts")
        good = collections.insert(tx, goods, {"title": title, "price": price})
        for kind, terms in (
            ("pay-per-use", {"fee": price // 10}),
            ("trial", {"uses_left": 3}),
            ("site-license", {"fee": price * 4}),
        ):
            collections.insert(
                tx,
                contracts,
                {"good": title, "kind": kind, "terms": terms, "price": price},
            )
        return good


def consumer_release(objects, collections, title, account_ref):
    """Exercise a good under a randomly selected contract (§9.5.1)."""
    rng = random.Random(str(title))
    with objects.transaction() as tx:
        contracts = collections.open_collection(tx, "contracts")
        offers = [
            tx.get(ref)
            for ref in collections.exact(tx, contracts, "contracts_by_good", title)
        ]
        chosen_value = rng.choice(offers)
        (chosen_ref,) = [
            ref
            for ref in collections.exact(tx, contracts, "contracts_by_good", title)
            if tx.get(ref)["kind"] == chosen_value["kind"]
        ]
        contract = tx.get_for_update(chosen_ref)
        account = tx.get_for_update(account_ref)
        if contract["kind"] == "trial":
            if contract["terms"]["uses_left"] <= 0:
                raise RuntimeError("trial exhausted")
            new_terms = dict(contract["terms"])
            new_terms["uses_left"] -= 1
            collections.update(
                tx, contracts, chosen_ref, dict(contract, terms=new_terms)
            )
        else:
            fee = contract["terms"]["fee"]
            if account["balance"] < fee:
                raise RuntimeError("insufficient funds")
            tx.update(account_ref, dict(account, balance=account["balance"] - fee))
        return contract["kind"]


def main() -> None:
    platform = TrustedPlatform.create_in_memory(untrusted_size=16 * 1024 * 1024)
    chunks, objects, collections = build_store(platform)

    with objects.transaction() as tx:
        goods = collections.create_collection(tx, "goods")
        collections.add_index(tx, goods, "goods_by_title", "title")
        collections.add_index(tx, goods, "goods_by_price", "price", sorted_index=True)
        contracts = collections.create_collection(tx, "contracts")
        collections.add_index(tx, contracts, "contracts_by_good", "good")
        accounts = collections.create_collection(tx, "accounts")
        collections.add_index(tx, accounts, "accounts_by_owner", "owner")
        account = collections.insert(
            tx, accounts, {"owner": "consumer", "balance": 10_000}
        )

    # the vendor publishes a small catalog
    catalog = [("sonata.mp3", 120), ("novel.epub", 80), ("game.bin", 600),
               ("film.mkv", 300), ("atlas.pdf", 40)]
    for title, price in catalog:
        vendor_bind(objects, collections, title, price)
    print(f"catalog: {len(catalog)} goods × 3 contracts bound")

    # range query: everything under 150 cents (needs the sorted index —
    # a layered-crypto design cannot do this, §1.2)
    with objects.transaction() as tx:
        goods = collections.open_collection(tx, "goods")
        cheap = [
            (key, tx.get(ref)["title"])
            for key, ref in collections.range(tx, goods, "goods_by_price", None, 150)
        ]
    print("goods under 150:", cheap)

    # consume
    for title, _price in catalog[:3]:
        kind = consumer_release(objects, collections, title, account)
        print(f"released {title!r} under {kind!r}")
    balance = objects.read_committed(account)["balance"]
    print("balance after purchases:", balance)

    # --- the replay attack -------------------------------------------------
    print("\nattacker saves the database image, keeps spending, replays...")
    saved_image = platform.untrusted.tamper_image()
    for title, _price in catalog[3:]:
        consumer_release(objects, collections, title, account)
    print("balance now:", objects.read_committed(account)["balance"])
    chunks.close(checkpoint=False)
    platform.untrusted.tamper_replay(saved_image)
    try:
        ChunkStore.open(platform)
        raise SystemExit("BUG: replay went undetected!")
    except TamperDetectedError as exc:
        print(f"replay detected and refused: {exc}")


if __name__ == "__main__":
    main()
