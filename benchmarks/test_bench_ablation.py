"""Ablations of the design choices DESIGN.md §5 calls out.

These are not in the paper's evaluation; they quantify *why* the paper's
design decisions hold in this implementation:

1. **Checkpoint deferral** (§4.7): dirty descriptors buffer in cache and
   map chunks are written only at checkpoints — versus eagerly
   propagating the hash path on every commit.
2. **Δut lag window** (§4.8.2.2): how much TR-write traffic the
   counter-lag tolerance saves, per the paper's l_t/Δut commit-cost term.
3. **Counter vs direct validation**: TR traffic per commit of the two
   schemes.
4. **One object per chunk** (§7): commit volume vs a batched
   many-objects-per-chunk layout.
"""

from benchmarks.conftest import bench_store, data_partition, report
from repro.chunkstore import ops
from repro.platform import DiskModel


def _churn(store, pid, commits=40):
    ranks = [store.allocate_chunk(pid) for _ in range(8)]
    store.commit([ops.WriteChunk(pid, r, bytes(300)) for r in ranks])
    for commit_no in range(commits):
        store.commit(
            [ops.WriteChunk(pid, ranks[commit_no % 8], bytes([commit_no % 251]) * 300)]
        )


def test_ablation_checkpoint_deferral(benchmark):
    """Eager per-commit map propagation vs deferred checkpointing."""
    # deferred (the paper's design)
    platform_a, store_a = bench_store()
    pid_a = data_partition(store_a)
    before = store_a.platform.untrusted.stats.snapshot()
    _churn(store_a, pid_a)
    store_a.checkpoint()
    deferred = store_a.platform.untrusted.stats.delta(before)

    # eager: checkpoint after every commit (map path written each time)
    platform_b, store_b = bench_store()
    pid_b = data_partition(store_b)
    before = store_b.platform.untrusted.stats.snapshot()
    ranks = [store_b.allocate_chunk(pid_b) for _ in range(8)]
    store_b.commit([ops.WriteChunk(pid_b, r, bytes(300)) for r in ranks])
    store_b.checkpoint()
    for commit_no in range(40):
        store_b.commit(
            [ops.WriteChunk(pid_b, ranks[commit_no % 8], bytes([commit_no % 251]) * 300)]
        )
        store_b.checkpoint()
    eager = store_b.platform.untrusted.stats.delta(before)

    benchmark(lambda: None)
    report(
        "ablation: checkpoint deferral",
        [
            ("deferred bytes", str(deferred.bytes_written), "the design"),
            ("eager bytes", str(eager.bytes_written), "strawman"),
            (
                "write amplification saved",
                f"{eager.bytes_written / deferred.bytes_written:.1f}x",
                "checkpointing 'defers and consolidates' (§4.7)",
            ),
        ],
    )
    assert eager.bytes_written > 2 * deferred.bytes_written


def test_ablation_delta_ut_sweep(benchmark):
    """TR writes per commit as Δut grows (the l_t/Δut term, §4.8.2.2)."""
    model = DiskModel()
    rows = []
    costs = {}
    for delta_ut in (1, 5, 20):
        platform, store = bench_store(delta_ut=delta_ut)
        pid = data_partition(store)
        tr_before = platform.counter.write_count
        _churn(store, pid, commits=40)
        tr_writes = platform.counter.write_count - tr_before
        tr_time = model.tamper_resistant_time(tr_writes)
        costs[delta_ut] = tr_writes
        rows.append(
            (
                f"Δut={delta_ut}",
                f"{tr_writes} TR writes, {tr_time*1000:.0f} ms modeled",
                "l_t/Δut per commit",
            )
        )
    benchmark(lambda: None)
    report("ablation: Δut lag window", rows)
    assert costs[1] > costs[5] > costs[20]


def test_ablation_validation_modes(benchmark):
    """Direct hash validation pays l_t on every commit; counter mode
    amortises it (§4.8.2)."""
    results = {}
    for mode in ("direct", "counter"):
        platform, store = bench_store(validation_mode=mode, delta_ut=5)
        pid = data_partition(store)
        tr_before = (
            platform.tamper_resistant.write_count + platform.counter.write_count
        )
        _churn(store, pid, commits=40)
        results[mode] = (
            platform.tamper_resistant.write_count
            + platform.counter.write_count
            - tr_before
        )
    benchmark(lambda: None)
    report(
        "ablation: validation mode",
        [
            ("direct TR writes", str(results["direct"]), "1 per commit"),
            ("counter TR writes", str(results["counter"]), "1 per Δut commits"),
        ],
    )
    assert results["counter"] < results["direct"] / 2


def test_ablation_embedded_hash_tree(benchmark):
    """§4.2/§12: 'objects can be validated as they are located' because
    the hash tree is embedded in the location map.  A separate hash tree
    would force a *second* tree traversal per cold read.  We measure the
    embedded design's cold read against a simulated two-traversal read
    (locate twice from a cold cache)."""
    import time

    platform, store = bench_store(size=64 * 1024 * 1024)
    pid = data_partition(store)
    ranks = [store.allocate_chunk(pid) for _ in range(500)]
    store.commit([ops.WriteChunk(pid, r, b"x" * 256) for r in ranks])
    store.checkpoint()

    def cold_read():
        store.cache.clear()
        store.read_chunk(pid, ranks[250])

    def two_traversals():
        # separate location map + hash tree: walk the map once to locate,
        # once more to collect hashes
        store.cache.clear()
        store.read_chunk(pid, ranks[250])
        store.cache.clear()
        store.read_chunk(pid, ranks[250])

    def best(fn):
        best_time = float("inf")
        for _ in range(7):
            start = time.perf_counter()
            fn()
            best_time = min(best_time, time.perf_counter() - start)
        return best_time

    embedded = best(cold_read)
    separate = best(two_traversals)
    benchmark(lambda: store.read_chunk(pid, ranks[250]))
    report(
        "ablation: embedded hash tree",
        [
            ("embedded (locate=validate)", f"{embedded*1e6:.0f} µs", "the design"),
            ("separate trees (2 traversals)", f"{separate*1e6:.0f} µs", "strawman"),
        ],
    )
    assert separate > 1.5 * embedded


def test_ablation_object_per_chunk(benchmark):
    """One object per chunk (§7): updating one object commits one small
    chunk, versus a clustered layout where the whole cluster re-commits."""
    platform, store = bench_store()
    pid = data_partition(store)
    # one object per chunk: 16 objects of 200 B
    ranks = [store.allocate_chunk(pid) for _ in range(16)]
    store.commit([ops.WriteChunk(pid, r, bytes(200)) for r in ranks])
    before = platform.untrusted.stats.snapshot()
    for i in range(16):
        store.commit([ops.WriteChunk(pid, ranks[i], bytes([i]) * 200)])
    per_object = platform.untrusted.stats.delta(before).bytes_written

    # clustered: 16 objects in one 3200 B chunk
    cluster = store.allocate_chunk(pid)
    store.commit([ops.WriteChunk(pid, cluster, bytes(3200))])
    before = platform.untrusted.stats.snapshot()
    for i in range(16):
        store.commit([ops.WriteChunk(pid, cluster, bytes([i]) * 3200)])
    clustered = platform.untrusted.stats.delta(before).bytes_written

    benchmark(lambda: None)
    report(
        "ablation: one object per chunk",
        [
            ("per-object commits", f"{per_object} B", "smaller commit volume (§7)"),
            ("clustered commits", f"{clustered} B", "rewrites the whole cluster"),
        ],
    )
    assert per_object < clustered
