"""Compact binary codecs used for every on-"disk" structure.

All persistent TDB structures (chunk headers, descriptors, leaders, commit
chunks, backup descriptors, pickled objects) are serialized with the
:class:`Encoder` / :class:`Decoder` pair below.  The format is deliberately
simple and self-delimiting at the field level:

* unsigned integers as LEB128 varints,
* signed integers zig-zag mapped onto varints,
* byte strings and text length-prefixed with a varint,
* floats as fixed 8-byte IEEE-754 big-endian.

Nothing here is self-*describing*; readers must know the schema.  That keeps
the per-chunk overhead small, which matters for the §9.3 space numbers.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("uvarint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


class Encoder:
    """Append-only binary encoder."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def uint(self, value: int) -> "Encoder":
        self._parts.append(encode_uvarint(value))
        return self

    def int(self, value: int) -> "Encoder":
        self._parts.append(encode_uvarint(_zigzag(value)))
        return self

    def bool(self, value: bool) -> "Encoder":
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def float(self, value: float) -> "Encoder":
        self._parts.append(struct.pack(">d", value))
        return self

    def bytes(self, value: bytes) -> "Encoder":
        self._parts.append(encode_uvarint(len(value)))
        self._parts.append(value if isinstance(value, bytes) else bytes(value))
        return self

    def raw(self, value: bytes) -> "Encoder":
        """Append bytes without a length prefix (caller knows the size)."""
        self._parts.append(value if isinstance(value, bytes) else bytes(value))
        return self

    def raw_view(self, value) -> "Encoder":
        """Append a bytes-like span without a length prefix and **without
        copying**: the span (e.g. a ``memoryview`` slice of a larger
        buffer) is referenced until :meth:`finish` or :meth:`views` —
        callers must not mutate the underlying buffer before then."""
        self._parts.append(value)
        return self

    def views(self) -> List[bytes]:
        """The accumulated spans, writev-style: a list of bytes-like
        parts sharing storage with whatever was appended.  ``b"".join``
        (or a gathering write) over them equals :meth:`finish`."""
        return list(self._parts)

    def text(self, value: str) -> "Encoder":
        return self.bytes(value.encode("utf-8"))

    def opt_uint(self, value: Optional[int]) -> "Encoder":
        if value is None:
            return self.bool(False)
        return self.bool(True).uint(value)

    def finish(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class Decoder:
    """Sequential binary decoder matching :class:`Encoder`.

    Accepts any bytes-like ``data`` (``bytes`` or ``memoryview``):
    varint/scalar reads index without copying either way, and the
    :meth:`raw_view` accessor returns zero-copy spans of the input —
    readers that only need to hash or re-encrypt a field never
    materialize it."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset
        self._view: Optional[memoryview] = None

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def uint(self) -> int:
        value, self._pos = decode_uvarint(self._data, self._pos)
        return value

    def int(self) -> int:
        return _unzigzag(self.uint())

    def bool(self) -> bool:
        if self._pos >= len(self._data):
            raise ValueError("truncated bool")
        value = self._data[self._pos]
        self._pos += 1
        if value not in (0, 1):
            raise ValueError(f"invalid bool byte {value!r}")
        return bool(value)

    def float(self) -> float:
        if self._pos + 8 > len(self._data):
            raise ValueError("truncated float")
        (value,) = struct.unpack_from(">d", self._data, self._pos)
        self._pos += 8
        return value

    def bytes(self) -> bytes:
        length = self.uint()
        if self._pos + length > len(self._data):
            raise ValueError("truncated bytes field")
        value = self._data[self._pos : self._pos + length]
        self._pos += length
        return value if isinstance(value, bytes) else bytes(value)

    def raw(self, length: int) -> bytes:
        if self._pos + length > len(self._data):
            raise ValueError("truncated raw field")
        value = self._data[self._pos : self._pos + length]
        self._pos += length
        return value if isinstance(value, bytes) else bytes(value)

    def raw_view(self, length: int) -> memoryview:
        """Zero-copy :meth:`raw`: a ``memoryview`` span of the input.

        The view shares storage with the decoder's buffer; it stays
        valid as long as that buffer does."""
        if self._pos + length > len(self._data):
            raise ValueError("truncated raw field")
        if self._view is None:
            self._view = memoryview(self._data)
        value = self._view[self._pos : self._pos + length]
        self._pos += length
        return value

    def text(self) -> str:
        return self.bytes().decode("utf-8")

    def opt_uint(self) -> Optional[int]:
        if not self.bool():
            return None
        return self.uint()

    def expect_exhausted(self) -> None:
        if not self.exhausted():
            raise ValueError(
                f"{len(self._data) - self._pos} trailing bytes after decode"
            )
