"""Two-phase locking with timeout-based deadlock breaking (§7).

"The object store implements two-phase locking on objects and breaks
deadlocks using timeouts.  Transactions acquire locks in either shared or
exclusive mode.  We chose not to implement granular or operation-level
locks because we expect only a few concurrent transactions."

The lock manager keeps one shared/exclusive lock per object reference.
A transaction that cannot acquire a lock within the timeout raises
:class:`~repro.errors.DeadlockError` and must abort — crude but sound
deadlock handling appropriate for low concurrency.

Lock upgrade (S → X) is supported when the requester is the sole shared
holder; otherwise the upgrade waits like any other exclusive request (and
two simultaneous upgraders deadlock and time out, as they must).

Writer starvation: a pending exclusive request blocks *new* shared
grants on the same ref (``_LockState.waiters``), so a steady stream of
readers drains instead of starving the writer forever.  Transactions
already holding the lock re-enter freely — blocking them would deadlock
them against the very waiter they must release for.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro import obs
from repro.errors import DeadlockError
from repro.platform.clock import Clock, SystemClock


@dataclass
class _LockState:
    shared: Set[int] = field(default_factory=set)
    exclusive: int = 0  # transaction id, 0 = none
    #: exclusive requests currently blocked on this ref; while non-zero,
    #: new shared grants are refused so the writer eventually runs
    waiters: int = 0


class LockManager:
    """Per-object shared/exclusive locks for transactions."""

    def __init__(self, timeout: float = 2.0, clock: Optional[Clock] = None) -> None:
        self.timeout = timeout
        #: injectable time source (shared with the platform's retry layer),
        #: so deadlock-timeout tests never sleep on the wall clock
        self.clock = clock or SystemClock()
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._locks: Dict[Hashable, _LockState] = {}
        #: transaction id -> refs it holds (for release_all)
        self._held: Dict[int, Set[Hashable]] = {}
        self.deadlocks_broken = 0
        #: acquisitions that had to wait at least once
        self.waits = 0

    def acquire_shared(self, tx_id: int, ref: Hashable) -> None:
        """Take (or wait for) a shared lock on ``ref``; an exclusive lock
        already held by ``tx_id`` subsumes it.  Raises
        :class:`DeadlockError` after the timeout."""
        with self._condition:
            deadline = None
            while True:
                # re-fetch each iteration: release_all may pop an unheld
                # state object from the dict while we were waiting, and a
                # newer acquirer would then be operating on a *fresh*
                # object — granting ourselves on the stale one would break
                # mutual exclusion
                state = self._locks.setdefault(ref, _LockState())
                if state.exclusive == tx_id:
                    return  # X subsumes S
                if tx_id in state.shared:
                    return  # already held; re-entry must never block
                if state.exclusive == 0 and state.waiters == 0:
                    state.shared.add(tx_id)
                    self._held.setdefault(tx_id, set()).add(ref)
                    return
                if deadline is None:
                    deadline = self._now() + self.timeout
                    self.waits += 1
                    obs.add("locks.waits")
                if not self.clock.wait_on(
                    self._condition, self._remaining(deadline)
                ):
                    self._timeout(tx_id, ref, "shared")

    def acquire_exclusive(self, tx_id: int, ref: Hashable) -> None:
        """Take (or wait for) an exclusive lock on ``ref``; upgrades a
        shared lock when ``tx_id`` is the sole holder.  Raises
        :class:`DeadlockError` after the timeout."""
        with self._condition:
            deadline = None
            while True:
                state = self._locks.setdefault(ref, _LockState())  # see above
                others_shared = state.shared - {tx_id}
                if state.exclusive == tx_id:
                    return
                if state.exclusive == 0 and not others_shared:
                    state.shared.discard(tx_id)  # upgrade consumes the S lock
                    state.exclusive = tx_id
                    self._held.setdefault(tx_id, set()).add(ref)
                    return
                if deadline is None:
                    deadline = self._now() + self.timeout
                    self.waits += 1
                    obs.add("locks.waits")
                # register on *this* state object and deregister on the
                # same one.  release_all keeps waiter-registered states in
                # the dict (see there), so the fairness gate survives even
                # a full release of the current holders: a shared requester
                # arriving right after cannot jump our queue position.
                state.waiters += 1
                try:
                    woke = self.clock.wait_on(
                        self._condition, self._remaining(deadline)
                    )
                finally:
                    state.waiters -= 1
                    if not woke:
                        # Timing out abandons this exclusive request.  If we
                        # were the last thing keeping an otherwise-empty
                        # state alive (release_all keeps states with
                        # registered waiters), drop it now.
                        if (
                            not state.shared
                            and state.exclusive == 0
                            and state.waiters == 0
                            and self._locks.get(ref) is state
                        ):
                            self._locks.pop(ref, None)
                        # Shared requesters may be blocked *solely* on
                        # waiters > 0 (the writer-fairness gate); without a
                        # wake-up here they would sleep until their own
                        # deadline and raise DeadlockError on a lock that is
                        # actually grantable.
                        self._condition.notify_all()
                if not woke:
                    self._timeout(tx_id, ref, "exclusive")

    def release_all(self, tx_id: int) -> None:
        """Two-phase locking's shrink phase happens all at once, at commit
        or abort."""
        with self._condition:
            for ref in self._held.pop(tx_id, set()):
                state = self._locks.get(ref)
                if state is None:
                    continue
                state.shared.discard(tx_id)
                if state.exclusive == tx_id:
                    state.exclusive = 0
                # Pop the empty state ONLY if no exclusive waiter is
                # registered on it.  Waiters count on *this* object; a
                # popped state would be replaced by a fresh one whose
                # waiters == 0, so a newly arriving shared requester
                # would sail through the writer-fairness gate and jump
                # the surviving waiter's queue position — re-starving
                # the writer the gate exists to protect.
                if (
                    not state.shared
                    and state.exclusive == 0
                    and state.waiters == 0
                ):
                    self._locks.pop(ref, None)
            self._condition.notify_all()

    def holds(self, tx_id: int, ref: Hashable, exclusive: bool = False) -> bool:
        """Introspection: does ``tx_id`` currently hold a lock on ``ref``?"""
        with self._mutex:
            state = self._locks.get(ref)
            if state is None:
                return False
            if exclusive:
                return state.exclusive == tx_id
            return state.exclusive == tx_id or tx_id in state.shared

    def stats(self) -> Dict[str, int]:
        """Lock-manager tallies (surfaced via ``ObjectStore.stats()``)."""
        with self._mutex:
            return {
                "held_refs": len(self._locks),
                "active_transactions": len(self._held),
                "waits": self.waits,
                "deadlocks_broken": self.deadlocks_broken,
            }

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now()

    def _remaining(self, deadline: float) -> float:
        return max(0.0, deadline - self._now())

    def _timeout(self, tx_id: int, ref: Hashable, mode: str) -> None:
        self.deadlocks_broken += 1
        obs.add("locks.deadlocks_broken")
        obs.emit("deadlock_broken", tx=tx_id, ref=str(ref), mode=mode)
        raise DeadlockError(
            f"transaction {tx_id} timed out acquiring {mode} lock on {ref}; "
            f"presumed deadlock — aborting"
        )
