"""§9.2.3 — backup store operations.

Paper (512-byte chunks): incremental backup latency =
675 µs + 9 µs per chunk in the partition + 278 µs per updated chunk;
incremental backup *size* = 456 B + 528 B per updated chunk.

Shape checks: latency affine in (partition chunks, updated chunks) — the
per-partition-chunk term is the snapshot diff, the per-updated term the
chunk copy; size affine in updated chunks and far below a full backup.
"""

import time

import numpy as np

from benchmarks.conftest import PAPER, bench_store, data_partition, report
from repro.backup import BackupStore
from repro.chunkstore import ops

_CHUNK = 512  # the paper's chunk size for this experiment


def _populate(store, pid, count):
    ranks = [store.allocate_chunk(pid) for _ in range(count)]
    for start in range(0, count, 64):
        store.commit(
            [ops.WriteChunk(pid, r, b"\x33" * _CHUNK) for r in ranks[start : start + 64]]
        )
    return ranks


def test_incremental_backup_regression(benchmark):
    platform, store = bench_store(size=256 * 1024 * 1024, segment_size=256 * 1024)
    backup = BackupStore(store)
    rows, times, sizes = [], [], []
    stream = 0
    for n_chunks in (64, 256):
        pid = data_partition(store)
        ranks = _populate(store, pid, n_chunks)
        backup.create_backup([pid], f"base-{pid}")  # establish the base
        for n_updates in (1, 8, 32):
            stream_content = bytes([(stream + 7) % 251]) * _CHUNK
            for rank in ranks[:n_updates]:
                # content must differ from the base, or the hash-based
                # diff (correctly) excludes the rewrite from the backup
                store.commit([ops.WriteChunk(pid, rank, stream_content)])
            stream += 1
            start = time.perf_counter()
            info = backup.create_backup([pid], f"incr-{stream}")
            elapsed = time.perf_counter() - start
            assert info.incremental[pid]
            rows.append((1.0, n_chunks, n_updates))
            times.append(elapsed)
            sizes.append((n_updates, info.bytes_written))
    benchmark(lambda: None)  # the sweep above is the measurement
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(times), rcond=None)
    fixed_us = coef[0] * 1e6
    per_chunk_us = coef[1] * 1e6
    per_updated_us = coef[2] * 1e6
    size_design = np.array([(1.0, n) for n, _ in sizes])
    size_coef, *_ = np.linalg.lstsq(
        size_design, np.array([s for _, s in sizes]), rcond=None
    )
    report(
        "§9.2.3 incremental backup",
        [
            ("fixed", f"{fixed_us:.0f} µs", f"{PAPER['backup_fixed_us']} µs"),
            ("per chunk in partition", f"{per_chunk_us:.1f} µs", f"{PAPER['backup_per_chunk_us']} µs"),
            ("per updated chunk", f"{per_updated_us:.0f} µs", f"{PAPER['backup_per_updated_us']} µs"),
            ("size fixed", f"{size_coef[0]:.0f} B", f"{PAPER['backup_size_fixed']} B"),
            ("size per updated chunk", f"{size_coef[1]:.0f} B", f"{PAPER['backup_size_per_chunk']} B"),
        ],
    )
    assert per_updated_us > 0
    assert size_coef[1] > _CHUNK  # each updated chunk plus framing overhead


def test_incremental_much_smaller_than_full(benchmark):
    platform, store = bench_store(size=128 * 1024 * 1024, segment_size=256 * 1024)
    backup = BackupStore(store)
    pid = data_partition(store)
    ranks = _populate(store, pid, 400)
    full = backup.create_backup([pid], "full")
    store.commit([ops.WriteChunk(pid, ranks[0], b"\x55" * _CHUNK)])
    incr = backup.create_backup([pid], "incr")
    benchmark(lambda: None)
    report(
        "§9.2.3 full vs incremental size",
        [
            ("full (400 chunks)", f"{full.bytes_written} B", "n/a"),
            ("incremental (1 update)", f"{incr.bytes_written} B", "significantly less"),
        ],
    )
    assert incr.bytes_written < full.bytes_written / 50


def test_snapshot_commit_is_cheap(benchmark):
    """Backup consistency costs one commit, not a partition lock (§6.1)."""
    platform, store = bench_store(size=128 * 1024 * 1024, segment_size=256 * 1024)
    pid = data_partition(store)
    _populate(store, pid, 500)
    store.checkpoint()

    def snapshot():
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])

    benchmark(snapshot)
