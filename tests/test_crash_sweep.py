"""Systematic crash-everywhere sweep.

Run a scripted multi-layer workload once to discover every crash-
injection point it passes through, then re-run it crashing at each
(point, occurrence) pair and verify the recovery invariant:

    every operation that *returned* before the crash is durable;
    the operation in flight at the crash happened atomically or not at
    all; the store remains fully usable afterwards.

This is the closing argument for crash atomicity (§2.2): not just chosen
crash points, but all of them.  The discover-then-replay loop itself
lives in :class:`repro.testing.sweep.SweepDriver`, shared with the
adversary harness so crash points and tamper points are enumerated the
same way.
"""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.testing.sweep import SweepDriver
from tests.conftest import make_config, make_platform

MODES = ["counter", "direct"]


class SweepEnv:
    """One provisioned store per sweep site, plus the workload's progress
    record (consumed by the post-crash check)."""

    def __init__(self, mode):
        self.platform = make_platform(size=2 * 1024 * 1024)
        self.store = ChunkStore.format(
            self.platform, make_config(validation_mode=mode, segment_size=8 * 1024)
        )
        self.pid = self.store.allocate_partition()
        self.store.commit(
            [ops.WritePartition(self.pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        self.committed = {}
        self.in_flight = None


def scripted_run(env):
    """The workload: records committed state on ``env`` as it goes; an
    injected :class:`CrashError` propagates with ``env.in_flight`` still
    set to the interrupted step."""
    steps = []
    # step list: (kind, rank, data)
    for i in range(4):
        steps.append(("write", i, f"v{i}".encode()))
    steps.append(("checkpoint", None, None))
    steps.append(("write", 1, b"v1-updated"))
    steps.append(("dealloc", 2, None))
    steps.append(("write", 4, b"late"))
    steps.append(("clean", None, None))
    steps.append(("write", 0, b"v0-final"))

    store, pid = env.store, env.pid
    for kind, rank, data in steps:
        env.in_flight = (kind, rank, data)
        if kind == "write":
            state = store.partitions[pid]
            if not (
                rank in state.pending_ranks
                or state.is_committed_written(rank)
            ):
                state.allocate_specific(rank)
            store.commit([ops.WriteChunk(pid, rank, data)])
            env.committed[rank] = data
        elif kind == "dealloc":
            store.commit([ops.DeallocateChunk(pid, rank)])
            env.committed.pop(rank, None)
        elif kind == "checkpoint":
            store.checkpoint()
        elif kind == "clean":
            store.clean(max_segments=2)
        env.in_flight = None


def check_recovery(env, site):
    """The §2.2 invariant, verified on the rebooted platform."""
    pid, committed, in_flight = env.pid, env.committed, env.in_flight
    env.platform.reboot()
    reopened = ChunkStore.open(env.platform)
    # 1) completed operations are durable
    for rank, value in committed.items():
        got = reopened.read_chunk(pid, rank)
        # the in-flight op may legitimately have committed too
        if in_flight and in_flight[0] == "write" and in_flight[1] == rank:
            assert got in (value, in_flight[2]), site
        else:
            assert got == value, (site, rank)
    # 2) the in-flight operation was atomic
    if in_flight and in_flight[0] == "write":
        rank = in_flight[1]
        if rank not in committed:
            try:
                got = reopened.read_chunk(pid, rank)
                assert got == in_flight[2], site
            except Exception:
                pass  # not committed: equally fine
    # 3) the store still works end-to-end
    state = reopened.partitions[pid]
    state.allocate_specific(9)
    reopened.commit([ops.WriteChunk(pid, 9, b"post-crash-probe")])
    assert reopened.read_chunk(pid, 9) == b"post-crash-probe"


@pytest.mark.parametrize("mode", MODES)
def test_crash_at_every_point(mode):
    driver = SweepDriver(lambda: SweepEnv(mode))
    points = driver.discover(scripted_run)
    assert points, "the workload must traverse injection points"
    crashed = driver.sweep(scripted_run, check_recovery, samples_per_point=3)
    assert len(crashed) >= 8, f"sweep only exercised {len(crashed)} crash sites"


@pytest.mark.parametrize("mode", MODES)
def test_sweep_discovery_matches_legacy_enumeration(mode):
    """The shared driver discovers the same point set a hand-rolled
    discovery pass does (guards the refactor onto SweepDriver)."""
    driver = SweepDriver(lambda: SweepEnv(mode))
    points = driver.discover(scripted_run)
    env = SweepEnv(mode)
    env.platform.injector.counts.clear()
    scripted_run(env)
    assert points == dict(env.platform.injector.counts)
