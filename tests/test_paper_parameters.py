"""End-to-end with the *paper's* cryptographic parameters: 3DES-CBC for
the system partition, DES-CBC for data partitions, SHA-1 everywhere
(§9.1).  Slower in pure Python, so the volumes are small — the point is
that the faithful configuration exercises the identical code paths."""

import pytest

from repro.backup import BackupStore
from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.errors import TamperDetectedError
from repro.objectstore import ObjectStore
from tests.conftest import make_platform


@pytest.fixture(scope="module")
def paper_env():
    platform = make_platform(size=4 * 1024 * 1024)
    config = StoreConfig(
        segment_size=16 * 1024,
        system_cipher="3des-cbc",
        system_hash="sha1",
        validation_mode="counter",
        delta_ut=5,
    )
    store = ChunkStore.format(platform, config)
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="des-cbc", hash_name="sha1")])
    return platform, store, pid


class TestPaperParameters:
    def test_write_read_roundtrip(self, paper_env):
        platform, store, pid = paper_env
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"pay-per-use state")])
        assert store.read_chunk(pid, rank) == b"pay-per-use state"

    def test_des_ciphertext_on_device(self, paper_env):
        platform, store, pid = paper_env
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"DESPLAINTEXTMARKER")])
        assert b"DESPLAINTEXTMARKER" not in platform.untrusted.tamper_image()

    def test_tamper_detected_under_sha1(self, paper_env):
        from repro.chunkstore.ids import data_id

        platform, store, pid = paper_env
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"victim chunk")])
        descriptor = store._get_descriptor(data_id(pid, rank))
        offset = descriptor.location + descriptor.length - 3
        byte = platform.untrusted.tamper_read(offset, 1)
        platform.untrusted.tamper_write(offset, bytes([byte[0] ^ 4]))
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, rank)

    def test_recovery_under_paper_crypto(self):
        # own environment: the reboot invalidates any shared store handle
        platform = make_platform(size=2 * 1024 * 1024)
        config = StoreConfig(
            segment_size=16 * 1024,
            system_cipher="3des-cbc",
            system_hash="sha1",
            delta_ut=5,
        )
        store = ChunkStore.format(platform, config)
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="des-cbc", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"survives 3des recovery"),
            ]
        )
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, 0) == b"survives 3des recovery"


class TestPaperStackSmoke:
    def test_objects_and_backup_with_paper_crypto(self):
        platform = make_platform(size=4 * 1024 * 1024)
        config = StoreConfig(
            segment_size=16 * 1024,
            system_cipher="3des-cbc",
            system_hash="sha1",
            delta_ut=5,
        )
        store = ChunkStore.format(platform, config)
        objects = ObjectStore(store)
        pid = objects.create_partition(cipher_name="des-cbc", hash_name="sha1")
        with objects.transaction() as tx:
            ref = tx.create(pid, {"contract": "pay-per-use", "fee": 10})
        backup = BackupStore(store)
        backup.create_backup([pid], "paper-backup")
        from repro.platform import TrustedPlatform

        replacement = TrustedPlatform.create_in_memory(
            untrusted_size=4 * 1024 * 1024, secret=platform.secret_store.read()
        )
        replacement.archival = platform.archival
        restored = ChunkStore.format(replacement, config)
        BackupStore(restored).restore(["paper-backup"])
        assert ObjectStore(restored).read_committed(ref) == {
            "contract": "pay-per-use",
            "fee": 10,
        }
