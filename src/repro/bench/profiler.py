"""Nested-exclusive module profiler (for the Figure 12 breakdown).

The paper's Figure 12 reports per-module time where "the time reported for
each module excludes nested calls to other reported modules" (§9.5.3).
This profiler reproduces that accounting: modules wrap their entry points
in ``with profiled("chunk store"):``; when module A calls into module B,
A's clock pauses while B runs.

When no profiler is active (the normal case) the context manager is a
near-no-op, so production paths stay cheap.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

_active: Optional["Profiler"] = None


class Profiler:
    """Collects exclusive wall-clock time per module label."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.metrics: Dict[str, float] = {}
        self._stack: List[List] = []  # [label, started_at]

    # -- activation ----------------------------------------------------------

    def __enter__(self) -> "Profiler":
        global _active
        self._previous = _active
        _active = self
        return self

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._previous

    # -- measurement ---------------------------------------------------------

    def push(self, label: str) -> None:
        """Enter ``label``: pauses the enclosing label's clock."""
        now = time.perf_counter()
        if self._stack:
            top = self._stack[-1]
            self.totals[top[0]] = self.totals.get(top[0], 0.0) + (now - top[1])
            top[1] = now  # will be overwritten on resume
        self._stack.append([label, now])
        self.calls[label] = self.calls.get(label, 0) + 1

    def pop(self) -> None:
        """Leave the current label and resume its parent's clock."""
        now = time.perf_counter()
        label, started = self._stack.pop()
        self.totals[label] = self.totals.get(label, 0.0) + (now - started)
        if self._stack:
            self._stack[-1][1] = now  # resume the parent's clock

    def add_metric(self, label: str, value: float) -> None:
        """Accumulate a named counter (bytes encrypted, writes coalesced,
        ...) alongside the timing totals."""
        self.metrics[label] = self.metrics.get(label, 0) + value

    def report(self) -> Dict[str, float]:
        return dict(self.totals)


@contextmanager
def profiled(label: str):
    """Attribute the enclosed time to ``label`` (exclusive of nested labels)."""
    profiler = _active
    if profiler is None:
        yield
        return
    profiler.push(label)
    try:
        yield
    finally:
        profiler.pop()


def record_metric(label: str, value: float) -> None:
    """Accumulate ``value`` on the active profiler's ``metrics``; a single
    global check when no profiler is active, so hot paths stay cheap."""
    if _active is not None:
        _active.add_metric(label, value)


def active_profiler() -> Optional[Profiler]:
    return _active
