"""The portable pickle codec (§2.2, §7)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PicklingError
from repro.objectstore.pickling import (
    ObjectRef,
    PicklerRegistry,
    pickle_value,
    unpickle_value,
)


def primitives():
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**60), max_value=2**60),
        st.floats(allow_nan=False),
        st.text(max_size=40),
        st.binary(max_size=40),
        st.builds(ObjectRef, st.integers(0, 1000), st.integers(0, 10**6)),
    )


def values():
    return st.recursive(
        primitives(),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=8), children, max_size=5),
            st.lists(children, max_size=4).map(tuple),
        ),
        max_leaves=25,
    )


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**40,
            -(2**40),
            0.0,
            -2.5,
            "",
            "héllo wörld",
            b"",
            b"\x00\xff",
            [],
            [1, 2, 3],
            (1, "two", 3.0),
            {},
            {"k": [1, {"nested": True}]},
            set(),
            {1, 2, 3},
            ObjectRef(3, 17),
        ],
    )
    def test_roundtrip(self, value):
        assert unpickle_value(pickle_value(value)) == value

    def test_types_preserved(self):
        assert isinstance(unpickle_value(pickle_value((1, 2))), tuple)
        assert isinstance(unpickle_value(pickle_value([1, 2])), list)
        assert isinstance(unpickle_value(pickle_value({1})), set)
        assert isinstance(unpickle_value(pickle_value(True)), bool)
        assert isinstance(unpickle_value(pickle_value(ObjectRef(1, 2))), ObjectRef)

    def test_bool_is_not_int(self):
        # bool subclasses int in Python; the codec must keep them distinct
        assert unpickle_value(pickle_value(1)) == 1
        assert unpickle_value(pickle_value(True)) is True

    @given(values())
    def test_roundtrip_property(self, value):
        assert unpickle_value(pickle_value(value)) == value

    @given(values())
    def test_encoding_deterministic(self, value):
        assert pickle_value(value) == pickle_value(value)


class TestErrors:
    def test_unregistered_class(self):
        class Mystery:
            pass

        with pytest.raises(PicklingError):
            pickle_value(Mystery())

    def test_unknown_tag(self):
        from repro.util.codec import Encoder

        data = Encoder().uint(55).uint(0).finish()
        with pytest.raises(PicklingError):
            unpickle_value(data)

    def test_truncated_data(self):
        data = pickle_value([1, 2, 3])
        with pytest.raises(PicklingError):
            unpickle_value(data[:-1])

    def test_trailing_garbage(self):
        with pytest.raises((PicklingError, ValueError)):
            unpickle_value(pickle_value(1) + b"extra")

    def test_too_deep(self):
        value = [1]
        for _ in range(100):
            value = [value]
        with pytest.raises(PicklingError):
            pickle_value(value)


class TestRegisteredClasses:
    def make_registry(self):
        registry = PicklerRegistry()

        class Contract:
            def __init__(self, good, price):
                self.good = good
                self.price = price

            def __eq__(self, other):
                return (self.good, self.price) == (other.good, other.price)

        registry.register(
            40,
            Contract,
            lambda c: {"good": c.good, "price": c.price},
            lambda s: Contract(s["good"], s["price"]),
        )
        return registry, Contract

    def test_class_roundtrip(self):
        registry, Contract = self.make_registry()
        value = Contract("song.mp3", 99)
        data = pickle_value(value, registry)
        assert unpickle_value(data, registry) == value

    def test_nested_class_values(self):
        registry, Contract = self.make_registry()
        value = {"offers": [Contract("a", 1), Contract("b", 2)]}
        assert unpickle_value(pickle_value(value, registry), registry) == value

    def test_low_tag_rejected(self):
        registry = PicklerRegistry()
        with pytest.raises(PicklingError):
            registry.register(5, int, int, int)

    def test_conflicting_tag_rejected(self):
        registry, Contract = self.make_registry()
        with pytest.raises(PicklingError):
            registry.register(40, dict, dict, dict)

    def test_from_state_type_checked(self):
        registry = PicklerRegistry()

        class Thing:
            pass

        registry.register(41, Thing, lambda t: None, lambda s: "not a Thing")
        data = pickle_value_with_tag41 = None
        from repro.util.codec import Encoder

        data = Encoder().uint(41).uint(0).finish()  # tag 41, state None
        with pytest.raises(PicklingError):
            unpickle_value(data, registry)
