"""The nested-exclusive profiler (Figure 12 accounting) and DiskModel."""

import time

from repro.bench.profiler import Profiler, active_profiler, profiled


class TestProfiler:
    def test_inactive_is_noop(self):
        with profiled("anything"):
            pass  # no profiler active: must not blow up
        assert active_profiler() is None

    def test_simple_attribution(self):
        with Profiler() as profiler:
            with profiled("a"):
                time.sleep(0.01)
        assert profiler.totals["a"] >= 0.009
        assert profiler.calls["a"] == 1

    def test_nested_time_is_exclusive(self):
        """Module A's clock pauses while nested module B runs (§9.5.3:
        'the time reported for each module excludes nested calls')."""
        with Profiler() as profiler:
            with profiled("outer"):
                time.sleep(0.01)
                with profiled("inner"):
                    time.sleep(0.03)
                time.sleep(0.01)
        assert profiler.totals["inner"] >= 0.029
        assert profiler.totals["outer"] < 0.03  # inner time excluded

    def test_same_label_nested(self):
        with Profiler() as profiler:
            with profiled("x"):
                with profiled("x"):
                    time.sleep(0.005)
        assert profiler.calls["x"] == 2
        assert profiler.totals["x"] >= 0.004

    def test_reentrancy_restores_previous(self):
        outer = Profiler()
        inner = Profiler()
        with outer:
            with inner:
                with profiled("m"):
                    pass
            assert active_profiler() is outer
        assert "m" in inner.totals
        assert "m" not in outer.totals

    def test_exception_pops_cleanly(self):
        with Profiler() as profiler:
            try:
                with profiled("failing"):
                    raise RuntimeError()
            except RuntimeError:
                pass
            with profiled("after"):
                pass
        assert "failing" in profiler.totals
        assert "after" in profiler.totals

    def test_report_snapshot(self):
        with Profiler() as profiler:
            with profiled("m"):
                pass
        report = profiler.report()
        report["m"] = 999
        assert profiler.totals["m"] != 999  # report is a copy


class TestRealStackProfiling:
    def test_chunk_store_attributes_modules(self):
        from repro.chunkstore import ChunkStore, ops
        from tests.conftest import make_config, make_platform

        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        with Profiler() as profiler:
            for i in range(5):
                rank = store.allocate_chunk(pid)
                store.commit([ops.WriteChunk(pid, rank, b"x" * 500)])
            store.checkpoint()  # persist descriptors before dropping cache
            store.cache.clear()
            store.read_chunk(pid, 0)
        assert "chunk store" in profiler.totals
        assert "encryption" in profiler.totals
        assert "untrusted store write" in profiler.totals
        assert "untrusted store read" in profiler.totals
