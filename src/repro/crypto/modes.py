"""Cipher modes: CBC with PKCS#7 padding, and a SHA-256 counter stream.

``CbcCipher`` turns any :class:`~repro.crypto.cipher.BlockCipher` into a
whole-message :class:`~repro.crypto.cipher.Cipher`.  A random IV is
generated per message and prepended to the ciphertext.

``CtrStreamCipher`` is a keystream cipher built from SHA-256 in counter
mode: keystream block *i* = SHA-256(key ‖ nonce ‖ i).  Because hashlib runs
at C speed, this is the fast cipher option in a pure-Python build — the
analogue of the paper's "faster than DES" remark.  An 8-byte random nonce
is prepended to the ciphertext; the plaintext length is preserved.
"""

from __future__ import annotations

import hashlib

from repro.crypto.cipher import BlockCipher, Cipher, random_iv


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (always adds ≥1 byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip PKCS#7 padding; raises ``ValueError`` on malformed padding."""
    if not data or len(data) % block_size:
        raise ValueError("invalid padded length")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("corrupt padding")
    return data[:-pad_len]


class CbcCipher(Cipher):
    """CBC mode over a block cipher, PKCS#7 padded, random IV prepended."""

    def __init__(self, block_cipher: BlockCipher, name: str) -> None:
        self._bc = block_cipher
        self.name = name

    def encrypt(self, plaintext: bytes) -> bytes:
        bs = self._bc.block_size
        iv = random_iv(bs)
        padded = pkcs7_pad(plaintext, bs)
        out = bytearray(iv)
        prev = iv
        encrypt_block = self._bc.encrypt_block
        for i in range(0, len(padded), bs):
            block = bytes(a ^ b for a, b in zip(padded[i : i + bs], prev))
            prev = encrypt_block(block)
            out += prev
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        bs = self._bc.block_size
        if len(ciphertext) < 2 * bs or len(ciphertext) % bs:
            raise ValueError("ciphertext length invalid for CBC")
        prev = ciphertext[:bs]
        out = bytearray()
        decrypt_block = self._bc.decrypt_block
        for i in range(bs, len(ciphertext), bs):
            block = ciphertext[i : i + bs]
            plain = decrypt_block(block)
            out += bytes(a ^ b for a, b in zip(plain, prev))
            prev = block
        return pkcs7_unpad(bytes(out), bs)

    def ciphertext_size(self, plaintext_size: int) -> int:
        bs = self._bc.block_size
        padded = plaintext_size + (bs - plaintext_size % bs)
        return bs + padded  # IV + padded payload


class CtrStreamCipher(Cipher):
    """SHA-256 counter-mode keystream cipher (length-preserving + nonce)."""

    name = "ctr-sha256"

    _NONCE_SIZE = 8
    _BLOCK = 32  # sha256 digest size

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("ctr-sha256 requires a non-empty key")
        self._key = bytes(key)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        prefix = self._key + nonce
        while len(out) < length:
            out += hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
            counter += 1
        return bytes(out[:length])

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = random_iv(self._NONCE_SIZE)
        stream = self._keystream(nonce, len(plaintext))
        body = bytes(a ^ b for a, b in zip(plaintext, stream))
        return nonce + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < self._NONCE_SIZE:
            raise ValueError("ciphertext shorter than nonce")
        nonce = ciphertext[: self._NONCE_SIZE]
        body = ciphertext[self._NONCE_SIZE :]
        stream = self._keystream(nonce, len(body))
        return bytes(a ^ b for a, b in zip(body, stream))

    def ciphertext_size(self, plaintext_size: int) -> int:
        return self._NONCE_SIZE + plaintext_size
