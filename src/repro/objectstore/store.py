"""The object store (§7): type-safe, transactional access to objects.

Objects are pickled and stored **one per chunk** — the paper's deliberate
choice: it minimises the volume encrypted/hashed/logged per commit and
keeps the cache simple (no chunk ever mixes committed and uncommitted
objects), at the price of inter-object clustering, which doesn't matter
when the working set is cached (§7).

Transactions
============

:class:`Transaction` provides two-phase locking with shared/exclusive
modes and timeout-based deadlock breaking.  Buffering is *no-steal*:
modified objects stay in the transaction's private buffer until commit,
when they are pickled and handed to the chunk store as a single atomic
commit — so transaction atomicity rides directly on chunk-store commit
atomicity, and aborts never touch persistent state.

Usage::

    store = ObjectStore(chunk_store)
    pid = store.create_partition(cipher_name="des-cbc", hash_name="sha1")
    with store.transaction() as tx:
        ref = tx.create(pid, {"balance": 100})
        root = tx.get(store.root_ref(pid))
        ...
        tx.update(ref, {"balance": 90})
    # commits on scope exit; aborts if the block raised

Mutation discipline: ``tx.get`` returns the cached object itself.  Treat
it as immutable; to change it, build (or mutate) a value and call
``tx.update(ref, value)``.  Objects touched by an aborted transaction are
evicted from the shared cache defensively.
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import Any, Dict, List, Optional

from repro import obs
from repro.bench.profiler import profiled
from repro.chunkstore.ops import DeallocateChunk, WriteChunk, WritePartition
from repro.chunkstore.store import ChunkStore
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkNotWrittenError,
    ObjectNotFoundError,
    TDBError,
    TransactionError,
)
from repro.objectstore.cache import ObjectCache
from repro.objectstore.locks import LockManager
from repro.objectstore.pickling import (
    DEFAULT_REGISTRY,
    ObjectRef,
    PicklerRegistry,
    pickle_value,
    unpickle_value,
)


class TxStatus(Enum):
    """Lifecycle state of a :class:`Transaction`."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _Deleted:
    """Sentinel marking a buffered deletion."""


_DELETED = _Deleted()


class ObjectStore:
    """Named-object storage over a :class:`ChunkStore`."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        registry: PicklerRegistry = DEFAULT_REGISTRY,
        cache_size: int = 4096,
        lock_timeout: float = 2.0,
    ) -> None:
        self.chunks = chunk_store
        self.registry = registry
        self.cache = ObjectCache(cache_size)
        self.locks = LockManager(lock_timeout, clock=chunk_store.platform.clock)
        self._tx_ids = itertools.count(1)
        self._commit_mutex = threading.Lock()
        #: optional group-commit seam (set by the serving layer): an
        #: object with ``commit(ops)`` that batches concurrent commits.
        #: When set, transactions hand their op batch to it *without*
        #: taking ``_commit_mutex`` — serializing commits here would
        #: prevent the batches from ever forming.
        self.committer = None
        #: operation counters for the Figure 10 accounting
        self.op_counts: Dict[str, int] = {
            "read": 0,
            "update": 0,
            "add": 0,
            "delete": 0,
            "commit": 0,
        }

    # ------------------------------------------------------------------

    def create_partition(
        self,
        cipher_name: str = "des-cbc",
        hash_name: str = "sha1",
        key: Optional[bytes] = None,
        name: str = "",
    ) -> int:
        """Create a partition for objects (convenience wrapper)."""
        pid = self.chunks.allocate_partition()
        self.chunks.commit(
            [WritePartition(pid, cipher_name, hash_name, key, name)]
        )
        return pid

    def root_ref(self, partition: int) -> ObjectRef:
        """The conventional root object of a partition (rank 0)."""
        return ObjectRef(partition, 0)

    def transaction(self) -> "Transaction":
        """Begin a new serializable transaction (use as a context manager)."""
        return Transaction(self)

    def stats(self) -> Dict[str, object]:
        """Operation counts plus lock-manager tallies — including
        ``deadlocks_broken`` and ``waits``, which previously had no
        read-out path."""
        return {"ops": dict(self.op_counts), "locks": self.locks.stats()}

    def read_committed(self, ref: ObjectRef) -> Any:
        """Read outside any transaction (no isolation guarantees)."""
        return self._load(ref)

    # ------------------------------------------------------------------

    def _load(self, ref: ObjectRef) -> Any:
        present, value = self.cache.get(ref)
        if present:
            return value
        try:
            data = self.chunks.read_chunk(ref.partition, ref.rank)
        except (ChunkNotWrittenError, ChunkNotAllocatedError) as exc:
            raise ObjectNotFoundError(f"no object at {ref}") from exc
        with profiled("object store"):
            value = unpickle_value(data, self.registry)
        self.cache.put(ref, value)
        return value

    def _load_many(self, refs: List[ObjectRef]) -> Dict[ObjectRef, Any]:
        """Load several objects, coalescing chunk fetches per partition."""
        result: Dict[ObjectRef, Any] = {}
        todo: Dict[int, List[ObjectRef]] = {}
        for ref in refs:
            if ref in result:
                continue
            present, value = self.cache.get(ref)
            if present:
                result[ref] = value
            else:
                todo.setdefault(ref.partition, []).append(ref)
        for pid, missing in todo.items():
            try:
                chunks = self.chunks.read_chunks(pid, [r.rank for r in missing])
            except (ChunkNotWrittenError, ChunkNotAllocatedError) as exc:
                raise ObjectNotFoundError(
                    f"missing object among {missing}"
                ) from exc
            for ref in missing:
                with profiled("object store"):
                    value = unpickle_value(chunks[ref.rank], self.registry)
                self.cache.put(ref, value)
                result[ref] = value
        return result


class Transaction:
    """One serializable unit of work (two-phase locking, no-steal)."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store
        self.tx_id = next(store._tx_ids)
        self.status = TxStatus.ACTIVE
        #: ref -> new value (or _DELETED)
        self._writes: Dict[ObjectRef, Any] = {}
        #: refs whose ranks this tx allocated (rolled back on abort only
        #: in the volatile allocator sense — allocation is cheap)
        self._created: List[ObjectRef] = []

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif self.status == TxStatus.ACTIVE:
            self.commit()

    # -- operations -------------------------------------------------------------

    def _require_active(self) -> None:
        if self.status != TxStatus.ACTIVE:
            raise TransactionError(f"transaction is {self.status.value}")

    def get(self, ref: ObjectRef) -> Any:
        """Read an object under a shared lock."""
        self._require_active()
        with profiled("object store"):
            if ref in self._writes:
                value = self._writes[ref]
                if value is _DELETED:
                    raise ObjectNotFoundError(f"{ref} deleted in this transaction")
                self.store.op_counts["read"] += 1
                return value
            self.store.locks.acquire_shared(self.tx_id, ref)
        value = self.store._load(ref)
        self.store.op_counts["read"] += 1
        return value

    def get_many(self, refs: List[ObjectRef]) -> List[Any]:
        """Read several objects under shared locks, batching the chunk
        fetches per partition into single round trips."""
        self._require_active()
        buffered: Dict[ObjectRef, Any] = {}
        to_load: List[ObjectRef] = []
        with profiled("object store"):
            for ref in refs:
                if ref in self._writes:
                    value = self._writes[ref]
                    if value is _DELETED:
                        raise ObjectNotFoundError(
                            f"{ref} deleted in this transaction"
                        )
                    buffered[ref] = value
                else:
                    self.store.locks.acquire_shared(self.tx_id, ref)
                    to_load.append(ref)
        loaded = self.store._load_many(to_load)
        self.store.op_counts["read"] += len(refs)
        return [buffered[r] if r in buffered else loaded[r] for r in refs]

    def get_for_update(self, ref: ObjectRef) -> Any:
        """Read an object under an exclusive lock (avoids upgrade
        deadlocks in read-modify-write patterns)."""
        self._require_active()
        with profiled("object store"):
            if ref in self._writes:
                value = self._writes[ref]
                if value is _DELETED:
                    raise ObjectNotFoundError(f"{ref} deleted in this transaction")
                self.store.op_counts["read"] += 1
                return value
            self.store.locks.acquire_exclusive(self.tx_id, ref)
        value = self.store._load(ref)
        self.store.op_counts["read"] += 1
        return value

    def exists(self, ref: ObjectRef) -> bool:
        """True if ``ref`` names a stored object (takes a shared lock)."""
        self._require_active()
        if ref in self._writes:
            return self._writes[ref] is not _DELETED
        self.store.locks.acquire_shared(self.tx_id, ref)
        try:
            self.store._load(ref)
            return True
        except ObjectNotFoundError:
            return False

    def update(self, ref: ObjectRef, value: Any) -> None:
        """Buffer a new state for an existing object (exclusive lock)."""
        self._require_active()
        with profiled("object store"):
            self.store.locks.acquire_exclusive(self.tx_id, ref)
            self._writes[ref] = value
            self.store.op_counts["update"] += 1

    def create(self, partition: int, value: Any) -> ObjectRef:
        """Create a new object; returns its reference immediately so it can
        be linked from other objects in the same transaction (§4.1)."""
        self._require_active()
        with profiled("object store"):
            rank = self.store.chunks.allocate_chunk(partition)
            ref = ObjectRef(partition, rank)
            self.store.locks.acquire_exclusive(self.tx_id, ref)
            self._writes[ref] = value
            self._created.append(ref)
            self.store.op_counts["add"] += 1
            return ref

    def create_at(self, ref: ObjectRef, value: Any) -> ObjectRef:
        """Create an object at a *specific* reference (e.g. a partition's
        conventional root at rank 0)."""
        self._require_active()
        with profiled("object store"):
            state = self.store.chunks._state(ref.partition)
            state.allocate_specific(ref.rank)
            self.store.locks.acquire_exclusive(self.tx_id, ref)
            self._writes[ref] = value
            self._created.append(ref)
            self.store.op_counts["add"] += 1
            return ref

    def delete(self, ref: ObjectRef) -> None:
        """Buffer a deletion (exclusive lock)."""
        self._require_active()
        with profiled("object store"):
            self.store.locks.acquire_exclusive(self.tx_id, ref)
            self._writes[ref] = _DELETED
            self.store.op_counts["delete"] += 1

    # -- completion -----------------------------------------------------------

    def commit(self) -> None:
        """Pickle every dirty object and commit them atomically."""
        self._require_active()
        store = self.store
        try:
            with obs.span(
                "tx_commit", tx=self.tx_id, writes=len(self._writes)
            ), obs.time_block("objectstore.tx_commit"):
                with profiled("object store"):
                    ops: List[object] = []
                    for ref, value in self._writes.items():
                        if value is _DELETED:
                            if ref not in self._created:
                                ops.append(
                                    DeallocateChunk(ref.partition, ref.rank)
                                )
                        else:
                            data = pickle_value(value, store.registry)
                            ops.append(WriteChunk(ref.partition, ref.rank, data))
                if ops:
                    committer = store.committer
                    if committer is not None:
                        # group-commit path: the committer coalesces
                        # concurrent batches; our exclusive locks (held
                        # until the finally below) keep write sets in any
                        # one batch disjoint
                        committer.commit(ops)
                    else:
                        with store._commit_mutex:
                            store.chunks.commit(ops)
                store.op_counts["commit"] += 1
                for ref, value in self._writes.items():
                    if value is _DELETED:
                        store.cache.evict(ref)
                    else:
                        store.cache.put(ref, value)
                self.status = TxStatus.COMMITTED
        except BaseException:
            self.abort()
            raise
        finally:
            store.locks.release_all(self.tx_id)

    def abort(self) -> None:
        """Discard buffered changes; defensively evict touched objects."""
        if self.status != TxStatus.ACTIVE:
            return
        store = self.store
        obs.add("objectstore.tx_aborts")
        obs.emit("tx_abort", tx=self.tx_id, writes=len(self._writes))
        for ref in self._writes:
            store.cache.evict(ref)
            # the chunk-level payload cache holds the same (possibly
            # half-trusted) bytes — drop those entries too
            store.chunks.evict_payload(ref.partition, ref.rank)
        for ref in self._created:
            # return the volatile allocation so ranks are not leaked; a
            # store-level failure here (e.g. the partition was concurrently
            # deallocated) must not mask the abort, but it is recorded —
            # anything *outside* the store's error hierarchy propagates
            try:
                store.chunks._state(ref.partition).cancel_pending(ref.rank)
            except TDBError as exc:
                obs.add("objectstore.swallowed_errors")
                obs.emit(
                    "swallowed_error",
                    where="transaction.abort.cancel_pending",
                    error=type(exc).__name__,
                    detail=str(exc),
                )
        self._writes.clear()
        self.status = TxStatus.ABORTED
        store.locks.release_all(self.tx_id)
